// Stability propagation at fleet scale (ISSUE 10 tentpole, DESIGN.md §10).
//
// One origin drives a 64-node simulated fleet (8 AZs x 8 nodes, 1 ms intra /
// 10 ms inter one-way) under the MIN($ALLWNODES) predicate, so every frontier
// advance needs a report from every node. The workload is FIXED — the only
// variable is how mirror reports propagate:
//
//   immediate      every local advance flushes an ACKBATCH on the 2 ms ack
//                  heartbeat, broadcast to all peers (the paper's baseline);
//   deferred       mirrors accumulate cumulative vectors and broadcast one
//                  merged REPORTBATCH per 50 ms flush interval;
//   deferred+agg   mirrors flush to their AZ aggregator only; the aggregator
//                  min/max-merges the AZ's vectors and broadcasts one merged
//                  frame per flush over the long-haul links.
//
// Measured per mode: total control-plane bytes and frames (ACKBATCH +
// REPORTBATCH, summed over the fleet) and the per-message frontier lag
// (monitor fire time at each mirror minus the origin's send time, sampled at
// every mirror for every sequence). The tradeoff the table quantifies:
// deferred modes trade bounded extra lag (≈ flush interval per merge level)
// for an order-of-magnitude control-bandwidth reduction.
//
// Writes BENCH_stability_propagation.json (committed artifact;
// EXPERIMENTS.md "Stability propagation at fleet scale"). Acceptance (full
// run): deferred+agg control bytes >= 10x below immediate, and its p99 lag
// <= 2x flush interval + long-haul margins. --smoke runs a 16-node fleet
// with a 5x bytes floor (the scripts/ci.sh gate).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "config/topology.hpp"

namespace stab::bench {
namespace {

using ReportPath = StabilizerOptions::ReportPath;

constexpr double kIntraMs = 1.0;
constexpr double kInterMs = 10.0;
constexpr double kFlushMs = 50.0;
constexpr double kSendIntervalMs = 5.0;

struct ModeResult {
  const char* name = "";
  uint64_t control_bytes = 0;
  uint64_t control_frames = 0;
  uint64_t report_entries = 0;  // entries applied fleet-wide (merge depth)
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double converge_ms = 0;  // virtual time until every frontier caught up
};

ModeResult run_mode(const char* name, ReportPath path, size_t num_azs,
                    size_t nodes_per_az, size_t msgs) {
  Topology topo =
      fleet_topology(num_azs, nodes_per_az, kIntraMs, kInterMs, /*bw=*/0);
  StabilizerOptions base;
  base.ack_interval = millis(2);
  base.broadcast_acks = true;
  base.report_path = path;
  base.deferred_flush_interval = millis(static_cast<int64_t>(kFlushMs));
  StabCluster c(topo, base);

  const size_t n = topo.num_nodes();
  for (NodeId id = 0; id < n; ++id)
    if (!c.node(id).register_predicate("all", "MIN($ALLWNODES)")) {
      std::fprintf(stderr, "register_predicate failed at node %u\n", id);
      std::exit(1);
    }

  // Frontier lag: every mirror monitors origin 0; a fire covering sequences
  // (cursor, frontier] samples now - send_time for each one.
  std::vector<double> send_at_ms(msgs, 0);
  std::vector<SeqNum> cursor(n, kNoSeq);
  Series lag;
  for (NodeId id = 0; id < n; ++id) {
    if (id == 0) continue;  // the origin's own fire is not propagation lag
    Status ok = c.node(id).monitor_stability_frontier(
        "all",
        [&, id](SeqNum frontier, BytesView) {
          const double now_ms = to_ms(c.sim.now() - kTimeZero);
          for (SeqNum s = cursor[id] + 1;
               s <= frontier && s < static_cast<SeqNum>(msgs); ++s)
            lag.add(now_ms - send_at_ms[static_cast<size_t>(s)]);
          cursor[id] = frontier;
        },
        /*origin=*/0);
    if (!ok) {
      std::fprintf(stderr, "monitor registration failed at node %u\n", id);
      std::exit(1);
    }
  }

  for (size_t i = 0; i < msgs; ++i)
    c.sim.schedule_at(from_ms(kSendIntervalMs * static_cast<double>(i + 1)),
                      [&c, &send_at_ms, i] {
                        send_at_ms[i] = to_ms(c.sim.now() - kTimeZero);
                        c.node(0).send(Bytes(32, 0xAB));
                      });

  // Run until every mirror's frontier covers the last message (chunked so
  // convergence time is read off the virtual clock, not the horizon).
  const SeqNum want = static_cast<SeqNum>(msgs) - 1;
  double now_ms = 0;
  const double deadline_ms = 300000;
  for (;;) {
    now_ms += 50;
    c.sim.run_until(from_ms(now_ms));
    bool done = true;
    for (NodeId id = 0; id < n && done; ++id)
      done = c.node(id).get_stability_frontier("all", 0) >= want;
    if (done) break;
    if (now_ms > deadline_ms) {
      std::fprintf(stderr, "TIMEOUT: %s not converged by %.0f ms\n", name,
                   deadline_ms);
      std::exit(1);
    }
  }

  if (lag.count() != (n - 1) * msgs) {
    std::fprintf(stderr, "LAG SAMPLE SHORTFALL: %zu != %zu\n", lag.count(),
                 (n - 1) * msgs);
    std::exit(1);
  }

  ModeResult r;
  r.name = name;
  r.converge_ms = now_ms;
  r.p50_ms = lag.percentile(50);
  r.p99_ms = lag.percentile(99);
  r.max_ms = lag.max();
  for (NodeId id = 0; id < n; ++id) {
    const obs::MetricsRegistry& m = c.node(id).metrics();
    for (const char* counter : {"control.ack_bytes_sent",
                                "control.report_bytes_sent"})
      if (const obs::Counter* v = m.find_counter(counter))
        r.control_bytes += v->value();
    for (const char* counter : {"control.ack_batches_sent",
                                "control.report_batches_sent"})
      if (const obs::Counter* v = m.find_counter(counter))
        r.control_frames += v->value();
    if (const obs::Counter* v = m.find_counter("control.report_entries_applied"))
      r.report_entries += v->value();
  }
  return r;
}

int run(bool smoke) {
  const size_t num_azs = smoke ? 4 : 8;
  const size_t nodes_per_az = smoke ? 4 : 8;
  const size_t msgs = smoke ? 60 : 200;
  const double bytes_floor = smoke ? 5.0 : 10.0;
  // p99 bound: one flush at the mirror plus one at the aggregator, plus the
  // long-haul hops the merged frame still pays, plus scheduling margin.
  const double p99_bound_ms = 2 * kFlushMs + 3 * kInterMs + 10;

  print_header("Stability propagation at fleet scale",
               "deferred update stabilization, §V-C flavor");
  std::printf(
      "fleet: %zu AZs x %zu nodes, %.0f/%.0f ms intra/inter one-way,\n"
      "origin 0 sends %zu msgs @ %.0f ms, MIN($ALLWNODES), flush %.0f ms\n\n"
      "%-14s | %12s %8s %10s %9s %9s %9s\n",
      num_azs, nodes_per_az, kIntraMs, kInterMs, msgs, kSendIntervalMs,
      kFlushMs, "mode", "ctrl bytes", "frames", "entries", "p50 ms",
      "p99 ms", "conv ms");

  ModeResult rows[3] = {
      run_mode("immediate", ReportPath::kImmediate, num_azs, nodes_per_az,
               msgs),
      run_mode("deferred", ReportPath::kDeferred, num_azs, nodes_per_az, msgs),
      run_mode("deferred+agg", ReportPath::kDeferredAggregated, num_azs,
               nodes_per_az, msgs),
  };

  std::FILE* json = std::fopen("BENCH_stability_propagation.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_stability_propagation.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"fleet\": {\"azs\": %zu, \"nodes_per_az\": %zu, "
               "\"intra_ms\": %.1f, \"inter_ms\": %.1f},\n"
               "  \"workload\": {\"msgs\": %zu, \"send_interval_ms\": %.1f, "
               "\"predicate\": \"MIN($ALLWNODES)\", \"flush_ms\": %.1f},\n"
               "  \"rows\": [\n",
               num_azs, nodes_per_az, kIntraMs, kInterMs, msgs,
               kSendIntervalMs, kFlushMs);

  const uint64_t base_bytes = rows[0].control_bytes;
  for (size_t i = 0; i < 3; ++i) {
    const ModeResult& r = rows[i];
    const double reduction =
        r.control_bytes ? static_cast<double>(base_bytes) /
                              static_cast<double>(r.control_bytes)
                        : 0;
    std::printf("%-14s | %12llu %8llu %10llu %9.1f %9.1f %9.0f\n", r.name,
                static_cast<unsigned long long>(r.control_bytes),
                static_cast<unsigned long long>(r.control_frames),
                static_cast<unsigned long long>(r.report_entries), r.p50_ms,
                r.p99_ms, r.converge_ms);
    std::fprintf(json,
                 "%s    {\"mode\": \"%s\", \"control_bytes\": %llu, "
                 "\"control_frames\": %llu, \"report_entries\": %llu, "
                 "\"bytes_reduction_vs_immediate\": %.2f, \"lag_p50_ms\": "
                 "%.2f, \"lag_p99_ms\": %.2f, \"lag_max_ms\": %.2f, "
                 "\"converge_ms\": %.0f}",
                 i ? ",\n" : "", r.name,
                 static_cast<unsigned long long>(r.control_bytes),
                 static_cast<unsigned long long>(r.control_frames),
                 static_cast<unsigned long long>(r.report_entries), reduction,
                 r.p50_ms, r.p99_ms, r.max_ms, r.converge_ms);
  }

  const double agg_reduction =
      rows[2].control_bytes ? static_cast<double>(base_bytes) /
                                  static_cast<double>(rows[2].control_bytes)
                            : 0;
  std::printf(
      "\ndeferred+agg control bytes: %.1fx below immediate (floor %.0fx)\n"
      "deferred+agg p99 lag: %.1f ms (bound %.0f ms)\n",
      agg_reduction, bytes_floor, rows[2].p99_ms, p99_bound_ms);
  std::fprintf(json,
               "\n  ],\n  \"agg_bytes_reduction\": %.2f,\n"
               "  \"bytes_floor\": %.1f,\n  \"agg_p99_ms\": %.2f,\n"
               "  \"p99_bound_ms\": %.1f,\n  \"smoke\": %s\n}\n",
               agg_reduction, bytes_floor, rows[2].p99_ms, p99_bound_ms,
               smoke ? "true" : "false");
  std::fclose(json);

#if !STAB_OBS_ENABLED
  // Byte counters read zero without the obs layer; the lag bound still holds.
  std::printf("obs disabled: skipping the control-bytes acceptance floor\n");
#else
  if (agg_reduction < bytes_floor) {
    std::fprintf(stderr, "FAIL: bytes reduction %.1fx < %.0fx\n",
                 agg_reduction, bytes_floor);
    return 1;
  }
#endif
  if (rows[2].p99_ms > p99_bound_ms) {
    std::fprintf(stderr, "FAIL: deferred+agg p99 lag %.1f ms > %.0f ms\n",
                 rows[2].p99_ms, p99_bound_ms);
    return 1;
  }
  std::printf("wrote BENCH_stability_propagation.json\n");
  return 0;
}

}  // namespace
}  // namespace stab::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  return stab::bench::run(smoke);
}
