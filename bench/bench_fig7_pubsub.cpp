// E-F7: Fig 7 — pub/sub latency and throughput vs sending rate, Stabilizer
// prototype vs PulsarLite (the Apache Pulsar stand-in), on the CloudLab
// topology (Table II).
//
// 10,000 x 8 KB messages per rate, rates 250..16000 msg/s; per-site
// end-to-end latency (publish -> remote delivery ack) and throughput.
// Paper's observations:
//   * both systems saturate at the same WAN bottleneck, with comparable
//     latency that explodes once the sending rate exceeds link bandwidth;
//   * on the LAN pair (UT2, 10 Gb) Pulsar's latency grows with rate —
//     attributed to JVM garbage collection — while Stabilizer stays flat.
#include "bench_common.hpp"
#include "pubsub/broker.hpp"
#include "pulsar/pulsar_lite.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

constexpr int kMessages = 10'000;
constexpr uint64_t kMsgSize = 8 * 1024;

struct SiteResult {
  double mean_latency_ms = 0;
  double thp_mbps = 0;
};

const char* site_names[] = {"UT2", "WI", "CLEM", "MA"};
const NodeId site_ids[] = {cloudlab::kUtah2, cloudlab::kWisconsin,
                           cloudlab::kClemson, cloudlab::kMassachusetts};

/// Stabilizer pub/sub: publisher broker at Utah1, subscriber per site.
std::array<SiteResult, 4> run_stabilizer(double rate) {
  Topology topo = cloudlab_topology();
  StabilizerOptions base;
  // Latency-sensitive workload: flush stability reports almost immediately
  // (they are tiny; monotonic coalescing still bounds their number).
  base.ack_interval = micros(100);
  base.broadcast_acks = false;
  StabCluster cluster(topo, base);
  std::vector<std::unique_ptr<pubsub::Broker>> brokers;
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    brokers.push_back(std::make_unique<pubsub::Broker>(cluster.node(n)));
  for (NodeId s : site_ids)
    brokers[s]->subscribe([](NodeId, SeqNum, BytesView) {});
  cluster.sim.run();  // propagate SUBs (they consume seqs 0..n)

  // Track per-site received acks at the publisher via per-site predicates.
  Stabilizer& pub = cluster.node(cloudlab::kUtah1);
  std::array<std::vector<double>, 4> arrival_ms;
  std::vector<double> send_ms;
  for (size_t i = 0; i < 4; ++i) {
    pub.register_predicate("site_" + std::to_string(i),
                           "MAX($WNODE_" +
                               topo.node(site_ids[i]).name + ")");
    auto last = std::make_shared<SeqNum>(pub.last_sent());  // skip SUB seqs
    pub.monitor_stability_frontier(
        "site_" + std::to_string(i),
        [&, i, last](SeqNum frontier, BytesView) {
          for (SeqNum s = *last + 1; s <= frontier; ++s)
            arrival_ms[i].push_back(to_ms(cluster.sim.now()));
          *last = frontier;
        });
  }

  TimePoint t0 = cluster.sim.now();
  SeqNum base_seq = pub.last_sent();
  (void)base_seq;
  for (int m = 0; m < kMessages; ++m) {
    cluster.sim.schedule_at(t0 + from_sec(m / rate), [&] {
      send_ms.push_back(to_ms(cluster.sim.now()));
      brokers[cloudlab::kUtah1]->publish({}, kMsgSize);
    });
  }
  cluster.sim.run();

  std::array<SiteResult, 4> out;
  for (size_t i = 0; i < 4; ++i) {
    Series lat;
    size_t n = std::min(arrival_ms[i].size(), send_ms.size());
    for (size_t m = 0; m < n; ++m) lat.add(arrival_ms[i][m] - send_ms[m]);
    out[i].mean_latency_ms = lat.mean();
    if (n > 0) {
      double span_s = (arrival_ms[i][n - 1] - send_ms[0]) / 1000.0;
      out[i].thp_mbps = n * kMsgSize * 8.0 / 1e6 / span_s;
    }
  }
  return out;
}

/// PulsarLite: broker per site, subscriber per remote site; acks back to
/// the origin broker measure latency.
std::array<SiteResult, 4> run_pulsar(double rate) {
  Topology topo = cloudlab_topology();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<pulsar::PulsarBroker>> brokers;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    pulsar::PulsarOptions opts;
    opts.self = n;
    for (NodeId m = 0; m < topo.num_nodes(); ++m) opts.brokers.push_back(m);
    brokers.push_back(std::make_unique<pulsar::PulsarBroker>(
        opts, cluster.transport(n)));
    brokers[n]->subscribe([](NodeId, uint64_t, BytesView) {});
  }

  std::array<std::vector<double>, 4> arrival_ms;
  std::vector<double> send_ms(kMessages, -1);
  brokers[cloudlab::kUtah1]->set_ack_handler(
      [&](NodeId site, uint64_t msg_id) {
        for (size_t i = 0; i < 4; ++i)
          if (site_ids[i] == site)
            arrival_ms[i].push_back(to_ms(sim.now()));
        (void)msg_id;
      });

  for (int m = 0; m < kMessages; ++m) {
    sim.schedule_at(from_sec(m / rate), [&, m] {
      send_ms[m] = to_ms(sim.now());
      brokers[cloudlab::kUtah1]->publish({}, kMsgSize);
    });
  }
  sim.run();

  std::array<SiteResult, 4> out;
  for (size_t i = 0; i < 4; ++i) {
    Series lat;
    size_t n = std::min(arrival_ms[i].size(), send_ms.size());
    for (size_t m = 0; m < n; ++m) lat.add(arrival_ms[i][m] - send_ms[m]);
    out[i].mean_latency_ms = lat.mean();
    if (n > 0) {
      double span_s = (arrival_ms[i][n - 1] - send_ms[0]) / 1000.0;
      out[i].thp_mbps = n * kMsgSize * 8.0 / 1e6 / span_s;
    }
  }
  return out;
}

}  // namespace

int main() {
  print_header("bench_fig7_pubsub — Stabilizer pub/sub vs PulsarLite",
               "Fig 7 (a) latency and (b) throughput");

  std::printf("\n10,000 x 8 KB messages per point; per publisher/subscriber "
              "pair.\n\n");
  std::printf("%7s |%22s |%22s |%22s |%22s\n", "", "UT2 (LAN 10G)",
              "WI (362 Mb)", "CLEM (416 Mb)", "MA (437 Mb)");
  std::printf("%7s |%10s %11s |%10s %11s |%10s %11s |%10s %11s\n", "rate",
              "stab", "pulsar", "stab", "pulsar", "stab", "pulsar", "stab",
              "pulsar");

  std::printf("---- (a) mean end-to-end latency (ms) ----\n");
  struct Point {
    double rate;
    std::array<SiteResult, 4> stab, pulsar;
  };
  std::vector<Point> points;
  for (double rate : {250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 12000.0,
                      16000.0}) {
    Point pt{rate, run_stabilizer(rate), run_pulsar(rate)};
    std::printf("%7.0f |", rate);
    for (size_t i = 0; i < 4; ++i)
      std::printf("%10.1f %11.1f |", pt.stab[i].mean_latency_ms,
                  pt.pulsar[i].mean_latency_ms);
    std::printf("\n");
    points.push_back(pt);
  }

  std::printf("\n---- (b) average throughput (Mbit/s) ----\n");
  for (const Point& pt : points) {
    std::printf("%7.0f |", pt.rate);
    for (size_t i = 0; i < 4; ++i)
      std::printf("%10.1f %11.1f |", pt.stab[i].thp_mbps,
                  pt.pulsar[i].thp_mbps);
    std::printf("\n");
  }

  // --- shape checks ------------------------------------------------------------
  const Point& top = points.back();
  // 16000 msg/s * 8 KB = 1048 Mb/s >> WAN links: both systems bottleneck at
  // (roughly) the link bandwidth on WAN sites.
  bool saturate = true;
  for (size_t i = 1; i < 4; ++i) {
    double link =
        cloudlab_topology().link(cloudlab::kUtah1, site_ids[i])->bandwidth_bps /
        1e6;
    saturate = saturate && top.stab[i].thp_mbps > link * 0.85 &&
               top.pulsar[i].thp_mbps > link * 0.7;
  }
  // LAN: Pulsar latency grows with rate (GC), Stabilizer stays flat.
  double stab_lan_growth =
      points.back().stab[0].mean_latency_ms - points[0].stab[0].mean_latency_ms;
  double pulsar_lan_growth = points.back().pulsar[0].mean_latency_ms -
                             points[0].pulsar[0].mean_latency_ms;
  bool lan_gap = pulsar_lan_growth > 5 * std::max(stab_lan_growth, 0.05);
  // Stabilizer as fast or faster than Pulsar everywhere.
  bool never_slower = true;
  for (const Point& pt : points)
    for (size_t i = 0; i < 4; ++i)
      never_slower = never_slower && pt.stab[i].mean_latency_ms <=
                                         pt.pulsar[i].mean_latency_ms * 1.05;

  std::printf("\nshape checks:\n");
  std::printf("  WAN sites saturate near link bandwidth (both systems): %s\n",
              saturate ? "PASS" : "FAIL");
  std::printf("  Pulsar LAN latency grows with rate (JVM GC model), "
              "Stabilizer flat: %s\n",
              lan_gap ? "PASS" : "FAIL");
  std::printf("  Stabilizer as fast or faster in all scenarios: %s\n",
              never_slower ? "PASS" : "FAIL");
  return (saturate && lan_gap && never_slower) ? 0 : 1;
}
