// Fault-campaign recovery times (DESIGN.md §5): how long after a fault
// heals until every stability frontier has caught up with every stream,
// as a function of background packet loss.
//
// Two campaigns, each at three loss rates:
//   * partition-heal: regions {0,1,2} | {3} split for 5 s under traffic;
//     measured time is heal -> all frontiers == all last_sent.
//   * crash-rejoin: node 2 crashes with volatile-state loss, restarts from
//     its control snapshot 3 s later and rejoins via RESUME; measured time
//     is restart -> all frontiers (including node 2's own) caught up.
//
// Loss makes recovery a retransmission process: the expected tail is a few
// multiples of retransmit_timeout, growing with the loss rate.
#include "bench_common.hpp"
#include "sim/chaos.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

StabilizerOptions base_options() {
  StabilizerOptions base;
  base.ack_interval = millis(2);
  base.retransmit_timeout = millis(150);
  base.broadcast_acks = true;
  return base;
}

Topology mesh4() {
  Topology t;
  for (int i = 0; i < 4; ++i)
    t.add_node("n" + std::to_string(i), "r" + std::to_string(i));
  LinkSpec s;
  s.latency = from_ms(20);
  s.bandwidth_bps = mbps(100);
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

void apply_loss(sim::SimNetwork& net, double p) {
  net.set_drop_rng_seed(0x5eed);
  for (NodeId a = 0; a < net.num_nodes(); ++a)
    for (NodeId b = 0; b < net.num_nodes(); ++b)
      if (a != b) net.set_drop_probability(a, b, p);
}

bool caught_up(std::vector<std::unique_ptr<Stabilizer>>& nodes) {
  for (auto& observer : nodes)
    for (auto& origin : nodes) {
      SeqNum last = origin->last_sent();
      if (last == kNoSeq) continue;
      if (observer->get_stability_frontier("all", origin->self()) < last)
        return false;
    }
  return true;
}

// Each node sends every `interval` of virtual time while live, until
// `until` (crashed slots skip their tick but keep the schedule).
void traffic(sim::Simulator& sim, std::vector<std::unique_ptr<Stabilizer>>& nodes,
             Duration interval, TimePoint until) {
  struct Pump {
    static void arm(sim::Simulator& sim,
                    std::vector<std::unique_ptr<Stabilizer>>& nodes, size_t id,
                    Duration interval, TimePoint until) {
      sim.schedule_after(interval, [&sim, &nodes, id, interval, until] {
        if (sim.now() > until) return;
        if (nodes[id]) nodes[id]->send(to_bytes("payload"));
        arm(sim, nodes, id, interval, until);
      });
    }
  };
  for (size_t id = 0; id < nodes.size(); ++id)
    Pump::arm(sim, nodes, id, interval, until);
}

double partition_heal_recovery_ms(double loss) {
  Topology topo = mesh4();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  apply_loss(cluster.network(), loss);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 4; ++n) {
    StabilizerOptions opts = base_options();
    opts.topology = topo;
    opts.self = n;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    if (!nodes.back()->register_predicate("all", "MIN($ALLWNODES)")) return -1;
  }

  sim::ChaosSchedule chaos(sim, cluster.network());
  sim::ChaosScript script;
  sim::add_partition(script, seconds(5), seconds(5), {{0, 1, 2}, {3}});
  sim::finalize_script(script);
  chaos.arm(script);

  traffic(sim, nodes, millis(50), seconds(9));  // quiesce before the heal
  const TimePoint heal = seconds(10);
  sim.run_until(heal);
  if (!sim.run_until_pred([&] { return caught_up(nodes); }, seconds(120)))
    return -1;
  return to_ms(sim.now() - heal);
}

double crash_rejoin_recovery_ms(double loss) {
  Topology topo = mesh4();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  apply_loss(cluster.network(), loss);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  auto boot = [&](NodeId n, const Bytes* snapshot) {
    StabilizerOptions opts = base_options();
    opts.topology = topo;
    opts.self = n;
    auto node = std::make_unique<Stabilizer>(opts, cluster.transport(n));
    if (snapshot) {
      if (!node->restore_control_state(*snapshot)) std::abort();
    } else if (!node->register_predicate("all", "MIN($ALLWNODES)")) {
      std::abort();
    }
    return node;
  };
  for (NodeId n = 0; n < 4; ++n) nodes.push_back(boot(n, nullptr));

  Bytes snapshot;
  sim::ChaosSchedule chaos(sim, cluster.network());
  chaos.set_crash_handler([&](NodeId n) {
    snapshot = nodes[n]->snapshot_control_state();
    nodes[n].reset();
    cluster.transport(n).detach();
  });
  chaos.set_restart_handler([&](NodeId n) {
    cluster.transport(n).reattach();
    nodes[n] = boot(n, &snapshot);
  });
  sim::ChaosScript script;
  sim::add_crash_restart(script, seconds(5), seconds(3), 2);
  sim::finalize_script(script);
  chaos.arm(script);

  traffic(sim, nodes, millis(50), seconds(7));  // quiesce before the restart
  const TimePoint restart = seconds(8);
  sim.run_until(restart);
  if (!sim.run_until_pred([&] { return caught_up(nodes); }, seconds(120)))
    return -1;
  return to_ms(sim.now() - restart);
}

}  // namespace

int main() {
  print_header("bench_chaos_recovery — heal -> frontier-caught-up time",
               "DESIGN.md §5 fault campaigns");

  std::printf("\n4 nodes, 20 ms links, retransmit_timeout = 150 ms.\n");
  std::printf("recovery = virtual time from fault heal until every node's\n");
  std::printf("\"all\" frontier matches every stream's last sequence.\n\n");
  std::printf("%-12s %22s %22s\n", "loss rate", "partition heal (ms)",
              "crash rejoin (ms)");
  for (double loss : {0.005, 0.02, 0.08}) {
    double part = partition_heal_recovery_ms(loss);
    double crash = crash_rejoin_recovery_ms(loss);
    std::printf("%-12.1f %22.1f %22.1f\n", loss * 100, part, crash);
  }
  std::printf(
      "\nShape check: at low loss the partition heals in ~one RTT + ack\n"
      "flush; the crash rejoin adds the RESUME round trip. Rising loss\n"
      "stretches both toward multiples of the 150 ms retransmit probe.\n");
  return 0;
}
