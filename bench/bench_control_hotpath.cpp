// Control-plane hot path microbench, two studies in one binary:
//
//  1. Single-threaded dispatch: indexed batch dispatch vs the legacy
//     per-entry scan (ISSUE 1 tentpole). Each AckBatchFrame entry used to
//     trigger an O(#predicates) scan plus a full eval of every predicate
//     referencing the updated cell; the indexed path cuts that with a
//     reverse dependency index + batch dedup + binding-cell skip. Writes
//     BENCH_control.json (working artifact, not committed — see
//     EXPERIMENTS.md "Control-plane hot path" for the recorded numbers).
//
//  2. Multi-threaded producer scaling: PipelineMode::kPipelined vs
//     kLegacyLocked under 1/2/4/8 producer threads x ack-heavy and
//     read-heavy mixes (ISSUE 6 tentpole). Producers drive one Stabilizer
//     facade concurrently; the pipelined mode folds reports into lock-free
//     ack cells and answers frontier reads from the wait-free board, the
//     locked baseline serializes everything through the API mutex. Writes
//     BENCH_control_mt.json (committed artifact, EXPERIMENTS.md "Producer
//     scaling"). `--smoke` shrinks both studies for CI and skips the
//     timing-based acceptance floors (structural assertions still run).
#include <cassert>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "config/topology.hpp"
#include "control/frontier_engine.hpp"
#include "core/stabilizer.hpp"
#include "net/inproc_transport.hpp"

namespace stab::bench {
namespace {

// Predicate pool: the Table III shapes, cycled. All reference type 0
// ("received") cells of the 8-node EC2 topology, so every predicate is a
// candidate on every ack — the worst case for the legacy scan.
std::vector<std::string> predicate_pool() {
  return {
      "MIN($ALLWNODES)",
      "MAX($ALLWNODES)",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)",
      "KTH_MIN(2,$ALLWNODES)",
      "MIN($ALLWNODES-$MYWNODE)",
      "KTH_MAX(3,($ALLWNODES-$MYWNODE))",
      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
  };
}

struct Workload {
  std::vector<AckUpdate> updates;  // num_batches * batch_size entries
};

// A random monotone ack stream: per-node counters advance by 0..3 per
// report, so a realistic fraction of reports is stale (max-merge no-ops).
Workload make_workload(size_t num_batches, size_t batch_size,
                       size_t num_nodes, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  std::vector<int64_t> counter(num_nodes, kNoSeq);
  w.updates.reserve(num_batches * batch_size);
  for (size_t b = 0; b < num_batches; ++b)
    for (size_t i = 0; i < batch_size; ++i) {
      NodeId n = static_cast<NodeId>(rng.next_below(num_nodes));
      counter[n] += rng.next_range(0, 3);
      w.updates.push_back(AckUpdate{0, n, counter[n], {}});
    }
  return w;
}

struct RunResult {
  uint64_t evals = 0;
  uint64_t skipped_index = 0;
  uint64_t skipped_binding = 0;
  double ns_per_ack = 0;
  std::vector<SeqNum> frontiers;
};

RunResult run(const Topology& topo, size_t num_predicates, size_t batch_size,
              const Workload& w, FrontierEngine::DispatchMode mode) {
  StabilityTypeRegistry types;
  FrontierEngine engine(topo, 0, types);
  engine.set_dispatch_mode(mode);
  auto pool = predicate_pool();
  std::vector<std::string> keys;
  for (size_t p = 0; p < num_predicates; ++p) {
    keys.push_back("p" + std::to_string(p));
    Status st = engine.register_predicate(keys.back(), pool[p % pool.size()]);
    if (!st.is_ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }
  const uint64_t evals0 = engine.predicate_evals();
  const uint64_t idx0 = engine.evals_skipped_index();
  const uint64_t bind0 = engine.evals_skipped_binding();

  auto start = std::chrono::steady_clock::now();
  if (mode == FrontierEngine::DispatchMode::kLegacyScan) {
    for (const AckUpdate& u : w.updates)
      engine.on_ack(u.type, u.node, u.seq, u.extra);
  } else {
    for (size_t off = 0; off < w.updates.size(); off += batch_size)
      engine.on_ack_batch(
          std::span<const AckUpdate>(w.updates.data() + off, batch_size));
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult r;
  r.evals = engine.predicate_evals() - evals0;
  r.skipped_index = engine.evals_skipped_index() - idx0;
  r.skipped_binding = engine.evals_skipped_binding() - bind0;
  r.ns_per_ack = static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         elapsed)
                         .count()) /
                 static_cast<double>(w.updates.size());
  for (const auto& k : keys) r.frontiers.push_back(engine.frontier(k));
  return r;
}

int run_single_threaded(bool smoke) {
  Topology topo = ec2_topology();
  const size_t predicates[] = {1, 2, 4, 8, 16, 32, 64};
  const size_t batches[] = {1, 4, 16, 64, 256};
  const size_t total_acks = smoke ? 8192 : 65536;  // per config

  std::FILE* json = std::fopen("BENCH_control.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_control.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": [\n");

  std::printf(
      "%5s %6s | %14s %14s %8s | %12s %12s | %10s %10s\n", "preds", "batch",
      "legacy evals", "indexed evals", "reduct", "legacy ns/ack",
      "indexed ns/ack", "skip_idx", "skip_bind");

  double headline_reduction = 0;
  bool first_row = true;
  for (size_t p : predicates) {
    for (size_t b : batches) {
      const size_t num_batches = total_acks / b;
      Workload w = make_workload(num_batches, b, topo.num_nodes(),
                                 /*seed=*/p * 1000 + b);
      RunResult legacy =
          run(topo, p, b, w, FrontierEngine::DispatchMode::kLegacyScan);
      RunResult indexed =
          run(topo, p, b, w, FrontierEngine::DispatchMode::kIndexed);
      if (legacy.frontiers != indexed.frontiers) {
        std::fprintf(stderr,
                     "FRONTIER MISMATCH at predicates=%zu batch=%zu\n", p, b);
        return 1;
      }
      const double acks = static_cast<double>(w.updates.size());
      const double legacy_epa = static_cast<double>(legacy.evals) / acks;
      const double indexed_epa = static_cast<double>(indexed.evals) / acks;
      const double reduction =
          indexed.evals ? static_cast<double>(legacy.evals) /
                              static_cast<double>(indexed.evals)
                        : 0;
      if (p == 16 && b == 64) headline_reduction = reduction;
      std::printf(
          "%5zu %6zu | %14.3f %14.3f %7.1fx | %12.1f %12.1f | %10llu %10llu\n",
          p, b, legacy_epa, indexed_epa, reduction, legacy.ns_per_ack,
          indexed.ns_per_ack,
          static_cast<unsigned long long>(indexed.skipped_index),
          static_cast<unsigned long long>(indexed.skipped_binding));
      std::fprintf(
          json,
          "%s    {\"predicates\": %zu, \"batch\": %zu, "
          "\"legacy_evals_per_ack\": %.4f, \"indexed_evals_per_ack\": %.4f, "
          "\"eval_reduction\": %.2f, \"legacy_ns_per_ack\": %.1f, "
          "\"indexed_ns_per_ack\": %.1f, \"evals_skipped_index\": %llu, "
          "\"evals_skipped_binding\": %llu}",
          first_row ? "" : ",\n", p, b, legacy_epa, indexed_epa, reduction,
          legacy.ns_per_ack, indexed.ns_per_ack,
          static_cast<unsigned long long>(indexed.skipped_index),
          static_cast<unsigned long long>(indexed.skipped_binding));
      first_row = false;
    }
  }

  std::printf(
      "\npredicate_evals reduction at 16 predicates / batch 64: %.1fx "
      "(acceptance floor: 5x)\n",
      headline_reduction);
  std::fprintf(json,
               "\n  ],\n  \"reduction_16pred_batch64\": %.2f,\n"
               "  \"acceptance_floor\": 5.0\n}\n",
               headline_reduction);
  std::fclose(json);
  if (headline_reduction < 5.0) {
    std::fprintf(stderr, "FAIL: reduction %.2f < 5x\n", headline_reduction);
    return 1;
  }
  std::printf("wrote BENCH_control.json\n");
  return 0;
}

// --- multi-threaded producer scaling (ISSUE 6) ---------------------------------

using PipelineMode = StabilizerOptions::PipelineMode;

struct MtResult {
  double ops_per_sec = 0;        // aggregate producer ops completed / wall time
  double ns_per_op = 0;          // inverse, per single op (wall)
  double read_cpu_ns_per_op = 0; // reader THREAD-CPU per op (read mixes only)
  SeqNum final_frontier = 0;     // after full convergence (digest input)
};

enum class Mix { kAck, kRead, kReadQuiet };

/// Per-thread CPU time (ns): unaffected by timeslicing, which on a
/// single-core machine otherwise dominates wall-clock per-op numbers.
double thread_cpu_ns() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

/// One facade under `producers` concurrent client threads.
///   kAck      : every producer op is report_stability("verified", ...) with
///               a globally increasing seq (shared fetch_add — every report
///               genuinely advances the stream, no binding-skip freebies).
///               The clock stops when the frontier has absorbed ALL reports
///               (end-to-end: ingestion + drain + eval), not when the last
///               producer returns.
///   kRead     : every producer op is get_stability_frontier, with one
///               background storm thread reporting continuously so reads
///               contend with ack ingestion (the "ack storm" of the ISSUE).
///   kReadQuiet: reads with no storm — the baseline the storm runs are
///               compared against for the flat-read-latency claim.
MtResult run_mt(PipelineMode mode, size_t producers, Mix mix,
                size_t ops_per_thread) {
  Topology topo;
  topo.add_node("n0", "az0");
  topo.add_node("n1", "az1");
  LinkSpec link;  // zero latency: direct dispatch on the InProc path
  topo.set_link(0, 1, link);
  topo.set_link(1, 0, link);
  InProcCluster cluster(2, &topo);

  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  opts.pipeline_mode = mode;
  Stabilizer node(opts, cluster.transport(0));
  // Several subscribers each register their own frontier key over the same
  // reported level (the paper's pattern: every consumer/application installs
  // its own predicate). The locked path re-evaluates every key under the
  // mutex per report; the pipelined drain evaluates each key once per
  // coalesced batch — the structural win this curve measures.
  constexpr size_t kKeys = 8;
  std::vector<std::string> keys;
  for (size_t k = 0; k < kKeys; ++k) {
    keys.push_back("sub" + std::to_string(k));
    Status st =
        node.register_predicate(keys.back(), "MAX(($ALLWNODES).verified)");
    if (!st.is_ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }
  // Warm-up report: registers "verified" on every engine path and makes the
  // first timed op representative.
  node.report_stability("verified", 0, 0);

  const bool reading = mix != Mix::kAck;
  std::atomic<SeqNum> next_seq{1};
  std::atomic<bool> storm_stop{false};
  std::atomic<uint64_t> reader_cpu_ns{0};
  const SeqNum expected_final =
      reading ? kNoSeq  // storm progress is unbounded; digest not compared
              : static_cast<SeqNum>(producers * ops_per_thread);

  std::vector<std::thread> threads;
  std::thread storm;
  if (mix == Mix::kRead)
    storm = std::thread([&] {
      while (!storm_stop.load(std::memory_order_relaxed))
        node.report_stability("verified", 0,
                              next_seq.fetch_add(1, std::memory_order_relaxed));
    });

  auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < producers; ++t)
    threads.emplace_back([&] {
      if (reading) {
        const double cpu0 = thread_cpu_ns();
        SeqNum prev = kNoSeq;
        for (size_t i = 0; i < ops_per_thread; ++i) {
          SeqNum f = node.get_stability_frontier(keys[0]);
          if (f < prev) {
            std::fprintf(stderr, "FRONTIER REGRESSION %lld -> %lld\n",
                         static_cast<long long>(prev),
                         static_cast<long long>(f));
            std::exit(1);
          }
          prev = f;
        }
        reader_cpu_ns.fetch_add(
            static_cast<uint64_t>(thread_cpu_ns() - cpu0),
            std::memory_order_relaxed);
      } else {
        for (size_t i = 0; i < ops_per_thread; ++i)
          node.report_stability(
              "verified", 0, next_seq.fetch_add(1, std::memory_order_relaxed));
      }
    });
  for (auto& t : threads) t.join();
  if (!reading) {
    // End-to-end: the run is not done until every report is visible.
    while (node.get_stability_frontier(keys[0]) < expected_final)
      std::this_thread::yield();
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  if (mix == Mix::kRead) {
    storm_stop.store(true, std::memory_order_relaxed);
    storm.join();
  }
  // Let any still-armed drain finish, then snapshot the converged frontier.
  SeqNum settled = node.get_stability_frontier(keys[0]);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    SeqNum again = node.get_stability_frontier(keys[0]);
    if (again == settled) break;
    settled = again;
  }

  // Every subscriber key tracks the same cells: their frontiers must agree.
  for (const auto& k : keys)
    if (node.get_stability_frontier(k) != settled) {
      std::fprintf(stderr, "SUBSCRIBER FRONTIER DISAGREEMENT at %s\n",
                   k.c_str());
      std::exit(1);
    }

  MtResult r;
  const double ops = static_cast<double>(producers * ops_per_thread);
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  r.ops_per_sec = ops / (ns / 1e9);
  r.ns_per_op = ns / ops;
  r.read_cpu_ns_per_op =
      reading ? static_cast<double>(reader_cpu_ns.load()) / ops : 0;
  r.final_frontier = settled;
  if (!reading && settled != expected_final) {
    std::fprintf(stderr, "FRONTIER SHORTFALL: %lld != expected %lld\n",
                 static_cast<long long>(settled),
                 static_cast<long long>(expected_final));
    std::exit(1);
  }
  return r;
}

int run_multi_threaded(bool smoke) {
  const size_t producer_counts[] = {1, 2, 4, 8};
  const size_t ops_per_thread = smoke ? 5000 : 100000;

  std::FILE* json = std::fopen("BENCH_control_mt.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_control_mt.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": [\n");

  std::printf("\n%10s %5s | %14s %14s %8s | %12s %12s\n", "mix", "prods",
              "locked ops/s", "piped ops/s", "speedup", "locked rdcpu",
              "piped rdcpu");

  struct MixSpec {
    Mix mix;
    const char* name;
  };
  const MixSpec mixes[] = {{Mix::kAck, "ack"},
                           {Mix::kRead, "read"},
                           {Mix::kReadQuiet, "read_quiet"}};

  double speedup_4p_ack = 0, speedup_4p_read = 0;
  double piped_read_cpu_storm_4p = 0, piped_read_cpu_quiet_4p = 0;
  bool first_row = true;
  for (const MixSpec& m : mixes) {
    for (size_t p : producer_counts) {
      MtResult locked =
          run_mt(PipelineMode::kLegacyLocked, p, m.mix, ops_per_thread);
      MtResult piped =
          run_mt(PipelineMode::kPipelined, p, m.mix, ops_per_thread);
      // Digest equality (ack mix): both modes must converge on the exact
      // same final frontier — every report absorbed, none lost or double
      // counted. (The read mixes' storm makes unequal progress by design.)
      if (m.mix == Mix::kAck &&
          locked.final_frontier != piped.final_frontier) {
        std::fprintf(stderr, "DIGEST MISMATCH at producers=%zu: %lld != %lld\n",
                     p, static_cast<long long>(locked.final_frontier),
                     static_cast<long long>(piped.final_frontier));
        return 1;
      }
      const double speedup = piped.ops_per_sec / locked.ops_per_sec;
      if (p == 4 && m.mix == Mix::kAck) speedup_4p_ack = speedup;
      if (p == 4 && m.mix == Mix::kRead) {
        speedup_4p_read = speedup;
        piped_read_cpu_storm_4p = piped.read_cpu_ns_per_op;
      }
      if (p == 4 && m.mix == Mix::kReadQuiet)
        piped_read_cpu_quiet_4p = piped.read_cpu_ns_per_op;
      std::printf("%10s %5zu | %14.0f %14.0f %7.2fx | %12.1f %12.1f\n",
                  m.name, p, locked.ops_per_sec, piped.ops_per_sec, speedup,
                  locked.read_cpu_ns_per_op, piped.read_cpu_ns_per_op);
      std::fprintf(
          json,
          "%s    {\"mix\": \"%s\", \"producers\": %zu, "
          "\"ops_per_thread\": %zu, \"locked_ops_per_sec\": %.0f, "
          "\"pipelined_ops_per_sec\": %.0f, \"speedup\": %.3f, "
          "\"locked_ns_per_op\": %.1f, \"pipelined_ns_per_op\": %.1f, "
          "\"locked_read_cpu_ns_per_op\": %.1f, "
          "\"pipelined_read_cpu_ns_per_op\": %.1f}",
          first_row ? "" : ",\n", m.name, p, ops_per_thread,
          locked.ops_per_sec, piped.ops_per_sec, speedup, locked.ns_per_op,
          piped.ns_per_op, locked.read_cpu_ns_per_op,
          piped.read_cpu_ns_per_op);
      first_row = false;
    }
  }

  // Flat-read-latency check: the wait-free read's CPU cost per op under an
  // ack storm vs quiet. (Thread-CPU, not wall: on a single-core machine the
  // storm steals timeslices from every thread, which wall-clock can't
  // separate from actual read-path degradation.)
  const double read_degradation =
      piped_read_cpu_quiet_4p > 0
          ? piped_read_cpu_storm_4p / piped_read_cpu_quiet_4p
          : 0;
  std::printf(
      "\naggregate speedup at 4 producers: ack-heavy %.2fx, read-heavy %.2fx "
      "(acceptance floor: 3x%s)\n"
      "wait-free read CPU under storm vs quiet at 4 producers: %.2fx\n",
      speedup_4p_ack, speedup_4p_read,
      smoke ? ", not enforced in --smoke" : "", read_degradation);
  std::fprintf(json,
               "\n  ],\n  \"speedup_4producers_ack\": %.3f,\n"
               "  \"speedup_4producers_read\": %.3f,\n"
               "  \"read_cpu_storm_over_quiet_4producers\": %.3f,\n"
               "  \"acceptance_floor\": 3.0,\n"
               "  \"smoke\": %s\n}\n",
               speedup_4p_ack, speedup_4p_read, read_degradation,
               smoke ? "true" : "false");
  std::fclose(json);
  if (!smoke && speedup_4p_ack < 3.0 && speedup_4p_read < 3.0) {
    std::fprintf(stderr, "FAIL: 4-producer speedup ack %.2fx / read %.2fx, "
                         "neither reaches 3x\n",
                 speedup_4p_ack, speedup_4p_read);
    return 1;
  }
  std::printf("wrote BENCH_control_mt.json\n");
  return 0;
}

}  // namespace
}  // namespace stab::bench

int main(int argc, char** argv) {
  using namespace stab;
  using namespace stab::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  print_header("Control-plane hot path: indexed dispatch + pipelined facade",
               "DESIGN.md §4c/§4f — ISSUE 1 + ISSUE 6 tentpoles");

  int rc = run_single_threaded(smoke);
  if (rc != 0) return rc;
  return run_multi_threaded(smoke);
}
