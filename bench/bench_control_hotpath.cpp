// Control-plane hot path microbench: indexed batch dispatch vs the legacy
// per-entry scan.
//
// The frontier engine is the hot loop of every trace run: each AckBatchFrame
// entry used to trigger an O(#predicates) scan plus a full eval of every
// predicate referencing the updated cell. This bench measures, for P
// registered predicates x batch size B, the number of Predicate::eval calls
// and the wall-clock cost per ack entry under both dispatch paths:
//   * legacy  — DispatchMode::kLegacyScan, one on_ack per entry (seed code),
//   * indexed — DispatchMode::kIndexed, one on_ack_batch per batch (reverse
//     dependency index + batch dedup + binding-cell skip).
// Both paths replay the identical ack sequence and the final frontiers are
// asserted equal. Results go to stdout and BENCH_control.json
// (EXPERIMENTS.md "Control-plane hot path").
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "config/topology.hpp"
#include "control/frontier_engine.hpp"

namespace stab::bench {
namespace {

// Predicate pool: the Table III shapes, cycled. All reference type 0
// ("received") cells of the 8-node EC2 topology, so every predicate is a
// candidate on every ack — the worst case for the legacy scan.
std::vector<std::string> predicate_pool() {
  return {
      "MIN($ALLWNODES)",
      "MAX($ALLWNODES)",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)",
      "KTH_MIN(2,$ALLWNODES)",
      "MIN($ALLWNODES-$MYWNODE)",
      "KTH_MAX(3,($ALLWNODES-$MYWNODE))",
      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
  };
}

struct Workload {
  std::vector<AckUpdate> updates;  // num_batches * batch_size entries
};

// A random monotone ack stream: per-node counters advance by 0..3 per
// report, so a realistic fraction of reports is stale (max-merge no-ops).
Workload make_workload(size_t num_batches, size_t batch_size,
                       size_t num_nodes, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  std::vector<int64_t> counter(num_nodes, kNoSeq);
  w.updates.reserve(num_batches * batch_size);
  for (size_t b = 0; b < num_batches; ++b)
    for (size_t i = 0; i < batch_size; ++i) {
      NodeId n = static_cast<NodeId>(rng.next_below(num_nodes));
      counter[n] += rng.next_range(0, 3);
      w.updates.push_back(AckUpdate{0, n, counter[n], {}});
    }
  return w;
}

struct RunResult {
  uint64_t evals = 0;
  uint64_t skipped_index = 0;
  uint64_t skipped_binding = 0;
  double ns_per_ack = 0;
  std::vector<SeqNum> frontiers;
};

RunResult run(const Topology& topo, size_t num_predicates, size_t batch_size,
              const Workload& w, FrontierEngine::DispatchMode mode) {
  StabilityTypeRegistry types;
  FrontierEngine engine(topo, 0, types);
  engine.set_dispatch_mode(mode);
  auto pool = predicate_pool();
  std::vector<std::string> keys;
  for (size_t p = 0; p < num_predicates; ++p) {
    keys.push_back("p" + std::to_string(p));
    Status st = engine.register_predicate(keys.back(), pool[p % pool.size()]);
    if (!st.is_ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }
  const uint64_t evals0 = engine.predicate_evals();
  const uint64_t idx0 = engine.evals_skipped_index();
  const uint64_t bind0 = engine.evals_skipped_binding();

  auto start = std::chrono::steady_clock::now();
  if (mode == FrontierEngine::DispatchMode::kLegacyScan) {
    for (const AckUpdate& u : w.updates)
      engine.on_ack(u.type, u.node, u.seq, u.extra);
  } else {
    for (size_t off = 0; off < w.updates.size(); off += batch_size)
      engine.on_ack_batch(
          std::span<const AckUpdate>(w.updates.data() + off, batch_size));
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult r;
  r.evals = engine.predicate_evals() - evals0;
  r.skipped_index = engine.evals_skipped_index() - idx0;
  r.skipped_binding = engine.evals_skipped_binding() - bind0;
  r.ns_per_ack = static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         elapsed)
                         .count()) /
                 static_cast<double>(w.updates.size());
  for (const auto& k : keys) r.frontiers.push_back(engine.frontier(k));
  return r;
}

}  // namespace
}  // namespace stab::bench

int main() {
  using namespace stab;
  using namespace stab::bench;

  print_header("Control-plane hot path: indexed batch dispatch",
               "DESIGN.md §4c / ISSUE 1 tentpole");

  Topology topo = ec2_topology();
  const size_t predicates[] = {1, 2, 4, 8, 16, 32, 64};
  const size_t batches[] = {1, 4, 16, 64, 256};
  const size_t total_acks = 65536;  // per cell, split into batches

  std::FILE* json = std::fopen("BENCH_control.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_control.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": [\n");

  std::printf(
      "%5s %6s | %14s %14s %8s | %12s %12s | %10s %10s\n", "preds", "batch",
      "legacy evals", "indexed evals", "reduct", "legacy ns/ack",
      "indexed ns/ack", "skip_idx", "skip_bind");

  double headline_reduction = 0;
  bool first_row = true;
  for (size_t p : predicates) {
    for (size_t b : batches) {
      const size_t num_batches = total_acks / b;
      Workload w = make_workload(num_batches, b, topo.num_nodes(),
                                 /*seed=*/p * 1000 + b);
      RunResult legacy =
          run(topo, p, b, w, FrontierEngine::DispatchMode::kLegacyScan);
      RunResult indexed =
          run(topo, p, b, w, FrontierEngine::DispatchMode::kIndexed);
      if (legacy.frontiers != indexed.frontiers) {
        std::fprintf(stderr,
                     "FRONTIER MISMATCH at predicates=%zu batch=%zu\n", p, b);
        return 1;
      }
      const double acks = static_cast<double>(w.updates.size());
      const double legacy_epa = static_cast<double>(legacy.evals) / acks;
      const double indexed_epa = static_cast<double>(indexed.evals) / acks;
      const double reduction =
          indexed.evals ? static_cast<double>(legacy.evals) /
                              static_cast<double>(indexed.evals)
                        : 0;
      if (p == 16 && b == 64) headline_reduction = reduction;
      std::printf(
          "%5zu %6zu | %14.3f %14.3f %7.1fx | %12.1f %12.1f | %10llu %10llu\n",
          p, b, legacy_epa, indexed_epa, reduction, legacy.ns_per_ack,
          indexed.ns_per_ack,
          static_cast<unsigned long long>(indexed.skipped_index),
          static_cast<unsigned long long>(indexed.skipped_binding));
      std::fprintf(
          json,
          "%s    {\"predicates\": %zu, \"batch\": %zu, "
          "\"legacy_evals_per_ack\": %.4f, \"indexed_evals_per_ack\": %.4f, "
          "\"eval_reduction\": %.2f, \"legacy_ns_per_ack\": %.1f, "
          "\"indexed_ns_per_ack\": %.1f, \"evals_skipped_index\": %llu, "
          "\"evals_skipped_binding\": %llu}",
          first_row ? "" : ",\n", p, b, legacy_epa, indexed_epa, reduction,
          legacy.ns_per_ack, indexed.ns_per_ack,
          static_cast<unsigned long long>(indexed.skipped_index),
          static_cast<unsigned long long>(indexed.skipped_binding));
      first_row = false;
    }
  }

  std::printf(
      "\npredicate_evals reduction at 16 predicates / batch 64: %.1fx "
      "(acceptance floor: 5x)\n",
      headline_reduction);
  std::fprintf(json,
               "\n  ],\n  \"reduction_16pred_batch64\": %.2f,\n"
               "  \"acceptance_floor\": 5.0\n}\n",
               headline_reduction);
  std::fclose(json);
  if (headline_reduction < 5.0) {
    std::fprintf(stderr, "FAIL: reduction %.2f < 5x\n", headline_reduction);
    return 1;
  }
  std::printf("wrote BENCH_control.json\n");
  return 0;
}
