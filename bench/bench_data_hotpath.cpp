// Data-plane hot path bench: encode-once shared frames + small-frame
// coalescing vs the seed's per-peer encode fan-out.
//
// A single origin broadcasts M payloads across an n-node zero-loss mesh and
// the sim drains until every peer delivered all M. Three configurations run
// the identical workload in one binary:
//   * legacy   — DataPath::kLegacy: encode per (message, peer), copy per peer
//                (the pre-change path; the kNoCoalesce-style toggle),
//   * shared   — DataPath::kShared: encode once per message, refcounted
//                fan-out through Transport::send_shared,
//   * coalesce — shared + coalesce_max_frames=16: consecutive small DATA
//                frames ride one kDataBatch per peer flush.
// Wall-clock throughput plus the new StabilizerStats counters are printed per
// (cluster, payload) cell and written to BENCH_data_hotpath.json
// (EXPERIMENTS.md "Data-plane hot path"). Acceptance: >= 2x broadcast
// throughput at 64 B / 5 nodes, best config vs legacy (full mode only;
// --smoke shrinks the workload for CI and skips the floor).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "config/topology.hpp"

namespace stab::bench {
namespace {

Topology mesh(size_t n) {
  Topology topo;
  for (size_t i = 0; i < n; ++i)
    topo.add_node("n" + std::to_string(i), "az" + std::to_string(i % 3));
  LinkSpec link;
  link.latency = millis(1);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) topo.set_link(a, b, link);
  return topo;
}

struct Config {
  const char* name;
  StabilizerOptions::DataPath path;
  size_t coalesce_max_frames;
};

constexpr Config kConfigs[] = {
    {"legacy", StabilizerOptions::DataPath::kLegacy, 0},
    {"shared", StabilizerOptions::DataPath::kShared, 0},
    {"coalesce", StabilizerOptions::DataPath::kShared, 16},
};

struct CaseResult {
  double wall_ms = 0;
  double msgs_per_sec = 0;
  StabilizerStats stats;  // sender's counters
};

CaseResult run_case(size_t nodes, size_t payload_size, const Config& cfg,
                    size_t msgs) {
  StabilizerOptions base;
  base.data_path = cfg.path;
  base.coalesce_max_frames = cfg.coalesce_max_frames;
  StabCluster c(mesh(nodes), base);

  std::vector<uint64_t> delivered(nodes, 0);
  for (NodeId n = 1; n < nodes; ++n)
    c.node(n).set_delivery_handler(
        [&delivered, n](NodeId, SeqNum, BytesView payload, uint64_t) {
          delivered[n] += payload.empty() ? 1 : (payload[0] == 0xAB ? 1 : 0);
        });

  const Bytes payload(payload_size, 0xAB);
  auto all_delivered = [&] {
    for (NodeId n = 1; n < nodes; ++n)
      if (delivered[n] < msgs) return false;
    return true;
  };

  auto start = std::chrono::steady_clock::now();
  // Stream in bursts so the out-buffer stays bounded by acks, like a real
  // producer; each burst is wide enough for coalescing to fill batches.
  const size_t kBurst = 64;
  for (size_t sent = 0; sent < msgs;) {
    for (size_t i = 0; i < kBurst && sent < msgs; ++i, ++sent)
      c.node(0).send(payload);
    c.sim.run_until(c.sim.now() + millis(5));
  }
  if (!c.sim.run_until_pred(all_delivered, c.sim.now() + seconds(300))) {
    std::fprintf(stderr, "bench stalled: %zu nodes payload %zu config %s\n",
                 nodes, payload_size, cfg.name);
    std::exit(1);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  CaseResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  r.msgs_per_sec = static_cast<double>(msgs) / (r.wall_ms / 1000.0);
  r.stats = c.node(0).stats();
  return r;
}

size_t messages_for(size_t payload_size, bool smoke) {
  if (payload_size >= 64 * 1024) return smoke ? 32 : 1024;
  return smoke ? 512 : 8192;
}

}  // namespace
}  // namespace stab::bench

int main(int argc, char** argv) {
  using namespace stab;
  using namespace stab::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int reps = smoke ? 1 : 3;

  print_header("Data-plane hot path: encode-once shared frames + coalescing",
               "DESIGN.md § data-plane fast path / ISSUE 4 tentpole");
  if (smoke) std::printf("(smoke mode: reduced workload, floor not enforced)\n");

  const size_t clusters[] = {3, 5, 9};
  const size_t payloads[] = {64, 1024, 64 * 1024};

  std::FILE* json = std::fopen("BENCH_data_hotpath.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_data_hotpath.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"smoke\": %s,\n  \"rows\": [\n",
               smoke ? "true" : "false");

  std::printf("%5s %7s %9s | %10s %9s | %8s %8s %9s %12s\n", "nodes",
              "payload", "config", "msgs/s", "vs legacy", "encodes",
              "shared", "coalesced", "copied bytes");

  double headline_ratio = 0;
  bool first_row = true;
  for (size_t n : clusters) {
    for (size_t p : payloads) {
      const size_t msgs = messages_for(p, smoke);
      double legacy_tput = 0;
      double best_tput = 0;
      for (const Config& cfg : kConfigs) {
        CaseResult best;
        for (int rep = 0; rep < reps; ++rep) {
          CaseResult r = run_case(n, p, cfg, msgs);
          if (rep == 0 || r.wall_ms < best.wall_ms) best = r;
        }
        if (cfg.path == StabilizerOptions::DataPath::kLegacy)
          legacy_tput = best.msgs_per_sec;
        if (best.msgs_per_sec > best_tput) best_tput = best.msgs_per_sec;
        const double ratio =
            legacy_tput > 0 ? best.msgs_per_sec / legacy_tput : 0;
        std::printf(
            "%5zu %6zuB %9s | %10.0f %8.2fx | %8llu %8llu %9llu %12llu\n", n,
            p, cfg.name, best.msgs_per_sec, ratio,
            static_cast<unsigned long long>(best.stats.data_encodes),
            static_cast<unsigned long long>(best.stats.shared_sends),
            static_cast<unsigned long long>(best.stats.frames_coalesced),
            static_cast<unsigned long long>(best.stats.fanout_bytes_copied));
        std::fprintf(
            json,
            "%s    {\"nodes\": %zu, \"payload\": %zu, \"config\": \"%s\", "
            "\"messages\": %zu, \"wall_ms\": %.2f, \"msgs_per_sec\": %.0f, "
            "\"vs_legacy\": %.3f, \"data_encodes\": %llu, "
            "\"shared_sends\": %llu, \"frames_coalesced\": %llu, "
            "\"fanout_bytes_copied\": %llu, \"frames_transmitted\": %llu}",
            first_row ? "" : ",\n", n, p, cfg.name, msgs, best.wall_ms,
            best.msgs_per_sec, ratio,
            static_cast<unsigned long long>(best.stats.data_encodes),
            static_cast<unsigned long long>(best.stats.shared_sends),
            static_cast<unsigned long long>(best.stats.frames_coalesced),
            static_cast<unsigned long long>(best.stats.fanout_bytes_copied),
            static_cast<unsigned long long>(best.stats.frames_transmitted));
        first_row = false;
      }
      if (n == 5 && p == 64) headline_ratio = best_tput / legacy_tput;
    }
  }

  std::printf(
      "\nbroadcast throughput at 64 B / 5 nodes, best config vs legacy: "
      "%.2fx (acceptance floor: 2x%s)\n",
      headline_ratio, smoke ? ", not enforced in smoke mode" : "");
  std::fprintf(json,
               "\n  ],\n  \"throughput_ratio_64B_5node\": %.3f,\n"
               "  \"acceptance_floor\": 2.0\n}\n",
               headline_ratio);
  std::fclose(json);
  if (!smoke && headline_ratio < 2.0) {
    std::fprintf(stderr, "FAIL: throughput ratio %.2f < 2x\n", headline_ratio);
    return 1;
  }
  std::printf("wrote BENCH_data_hotpath.json\n");
  return 0;
}
