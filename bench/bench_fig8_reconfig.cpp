// E-F8: Fig 8 — latency under dynamic predicate reconfiguration.
//
// Reliable broadcast on the pub/sub prototype over the CloudLab topology:
// 1600 x 8 KB messages at 80 msg/s (20 s). A subscriber on the slowest site
// (Clemson, 50.9 ms RTT) subscribes/unsubscribes every 5 seconds;
// Stabilizer swaps the predicate accordingly via change_predicate.
// Three curves, as in the paper:
//   * all_sites      — static: every remote site must ack;
//   * three_sites    — static: any three remote sites ack;
//   * changing       — reconfigured every 5 s, tracking the cheaper
//                      predicate whenever Clemson is unsubscribed.
#include "bench_common.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

constexpr int kMessages = 1600;
constexpr double kRate = 80.0;  // msg/s
constexpr uint64_t kMsgSize = 8 * 1024;

// Remote sites from Utah1: UT2, WI, CLEM, MA -> $2,$3,$4,$5 (1-based).
const char* kAllSites = "MIN($2,$3,$4,$5)";
const char* kThreeSites = "KTH_MAX(3,$2,$3,$4,$5)";

/// Runs the workload under a predicate regime; returns per-message latency.
/// mode: 0 = static all, 1 = static three, 2 = changing every 5 s.
std::vector<double> run(int mode) {
  Topology topo = cloudlab_topology();
  StabilizerOptions base;
  base.ack_interval = millis(1);
  base.broadcast_acks = false;
  StabCluster cluster(topo, base);
  Stabilizer& pub = cluster.node(cloudlab::kUtah1);

  pub.register_predicate("p", mode == 1 ? kThreeSites : kAllSites);
  if (mode == 2) {
    // Subscriber on the slowest site toggles every 5 s; Stabilizer adjusts
    // the predicate ("add/remove the slowest site from the observation
    // list via changing predicate").
    for (int k = 1; k * 5 < 21; ++k) {
      cluster.sim.schedule_at(seconds(5) * k, [&, k] {
        pub.change_predicate("p", k % 2 == 1 ? kThreeSites : kAllSites);
      });
    }
  }

  std::vector<double> latency(kMessages, -1);
  for (int m = 0; m < kMessages; ++m) {
    cluster.sim.schedule_at(from_sec(m / kRate), [&, m] {
      TimePoint start = cluster.sim.now();
      SeqNum seq = pub.send({}, kMsgSize);
      pub.waitfor(seq, "p", [&, m, start](SeqNum) {
        latency[m] = to_ms(cluster.sim.now() - start);
      });
    });
  }
  cluster.sim.run();
  return latency;
}

double mean_range(const std::vector<double>& v, int lo, int hi) {
  Series s;
  for (int i = lo; i < hi && i < static_cast<int>(v.size()); ++i)
    if (v[i] >= 0) s.add(v[i]);
  return s.mean();
}

}  // namespace

int main() {
  print_header("bench_fig8_reconfig — dynamic predicate reconfiguration",
               "Fig 8 of the paper");

  std::printf("\n1600 x 8 KB messages at 80 msg/s; predicate change every "
              "5 s in 'changing'.\n\n");
  auto all = run(0);
  auto three = run(1);
  auto changing = run(2);

  std::printf("%10s %12s %12s %12s\n", "second", "all_sites", "three_sites",
              "changing");
  for (int sec = 0; sec < 20; ++sec) {
    int lo = static_cast<int>(sec * kRate), hi = static_cast<int>((sec + 1) * kRate);
    std::printf("%10d %12.2f %12.2f %12.2f %s\n", sec,
                mean_range(all, lo, hi), mean_range(three, lo, hi),
                mean_range(changing, lo, hi),
                (sec > 0 && sec % 5 == 0) ? "<- predicate change" : "");
  }

  double m_all = mean_range(all, 0, kMessages);
  double m_three = mean_range(three, 0, kMessages);
  // 'changing' spends seconds 5-10 and 15-20 on three_sites.
  double m_changing_strong = (mean_range(changing, 0, 400) +
                              mean_range(changing, 800, 1200)) /
                             2;
  double m_changing_weak = (mean_range(changing, 400, 800) +
                            mean_range(changing, 1200, 1600)) /
                           2;

  std::printf("\nmean latency: all_sites %.2f ms, three_sites %.2f ms "
              "(paper gap: ~3 ms — MA is 3 ms faster than CLEM)\n",
              m_all, m_three);
  std::printf("changing: %.2f ms in all-sites phases, %.2f ms in "
              "three-sites phases\n",
              m_changing_strong, m_changing_weak);

  bool gap = m_all > m_three && (m_all - m_three) < 10;
  bool tracks = std::abs(m_changing_strong - m_all) < 1.5 &&
                std::abs(m_changing_weak - m_three) < 1.5;
  std::printf("\nshape checks:\n");
  std::printf("  all_sites slower than three_sites by a few ms: %s\n",
              gap ? "PASS" : "FAIL");
  std::printf("  'changing' tracks the active predicate's latency: %s\n",
              tracks ? "PASS" : "FAIL");
  return (gap && tracks) ? 0 : 1;
}
