// E-T2: Table II — network performance between Utah1 and the other
// CloudLab servers, probed through the simulated substrate.
#include "bench_common.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

double probe_rtt_ms(const Topology& topo, NodeId src, NodeId dst) {
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  TimePoint pong_at = kTimeZero;
  cluster.transport(dst).set_receive_handler([&](NodeId from, BytesView, uint64_t) {
    cluster.transport(dst).send(from, to_bytes("pong"));
  });
  cluster.transport(src).set_receive_handler(
      [&](NodeId, BytesView, uint64_t) { pong_at = sim.now(); });
  cluster.transport(src).send(dst, to_bytes("ping"));
  sim.run();
  return to_ms(pong_at);
}

double probe_thp_mbps(const Topology& topo, NodeId src, NodeId dst) {
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  const uint64_t total = 256ULL << 20;  // large, to dwarf latency
  uint64_t received = 0;
  TimePoint last = kTimeZero;
  cluster.transport(dst).set_receive_handler(
      [&](NodeId, BytesView, uint64_t wire) {
        received += wire;
        last = sim.now();
      });
  for (uint64_t off = 0; off < total; off += 256 * 1024)
    cluster.transport(src).send(dst, Bytes(), 256 * 1024);
  sim.run();
  return received * 8.0 / 1e6 / to_sec(last);
}

}  // namespace

int main() {
  print_header("bench_table2_network — CloudLab WAN substrate",
               "Table II of the paper");

  Topology topo = cloudlab_topology();
  std::printf("\nTable II: network performance between Utah1 and others\n\n");
  std::printf("%-14s %12s %12s | %12s %12s\n", "server", "paper Thp",
              "paper Lat", "probe Thp", "probe RTT");

  struct Row {
    const char* label;
    NodeId dst;
    double paper_thp;
    double paper_lat;
  };
  const Row rows[] = {
      {"Utah2", cloudlab::kUtah2, 9246.99, 0.124},
      {"Wisconsin", cloudlab::kWisconsin, 361.82, 35.612},
      {"Clemson", cloudlab::kClemson, 416.27, 50.918},
      {"Massachusetts", cloudlab::kMassachusetts, 437.11, 48.083},
  };
  bool all_ok = true;
  for (const Row& row : rows) {
    double rtt = probe_rtt_ms(topo, cloudlab::kUtah1, row.dst);
    double thp = probe_thp_mbps(topo, cloudlab::kUtah1, row.dst);
    bool ok = std::abs(rtt - row.paper_lat) < 0.5 &&
              std::abs(thp - row.paper_thp) / row.paper_thp < 0.02;
    all_ok = all_ok && ok;
    std::printf("%-14s %12.2f %12.3f | %12.2f %12.3f  %s\n", row.label,
                row.paper_thp, row.paper_lat, thp, rtt,
                ok ? "match" : "MISMATCH");
  }
  std::printf("\nsubstrate check: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
