// E-F6: Fig 6 — file synchronization completion time vs file size, with the
// topology-aware MajorityRegions / MajorityWNodes / OneWNode predicates
// against the PhxPaxos-like multi-Paxos baseline.
//
// One file at a time (no queuing, per §VI-B), sizes 1 KB .. 128 MB on the
// emulated EC2 topology. Paper's results to reproduce:
//   * PhxPaxos ~= MajorityWNodes (the curves mostly overlap) — a majority
//     quorum is topology-blind and reaches into North Virginia;
//   * MajorityRegions is faster (one copy in Oregon + one in Ohio suffices),
//     ~24.75% average end-to-end improvement, growing with file size.
#include "backup/backup_service.hpp"
#include "bench_common.hpp"
#include "paxos/paxos.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

/// Stabilizer: stream one file (virtual payload) and report each
/// predicate's completion time.
std::map<std::string, double> stabilizer_sync_ms(
    const Topology& topo, uint64_t file_size,
    const std::vector<std::string>& pred_names) {
  StabilizerOptions base;
  base.broadcast_acks = false;
  base.ack_interval = millis(2);
  StabCluster cluster(topo, base);
  Stabilizer& sender = cluster.node(0);
  auto preds = backup::BackupService::standard_predicates(topo, 0);
  for (const auto& n : pred_names) sender.register_predicate(n, preds[n]);

  auto [first, last] = sender.send_large({}, file_size);
  (void)first;
  std::map<std::string, double> done_ms;
  for (const auto& n : pred_names)
    sender.waitfor(last, n,
                   [&, n](SeqNum) { done_ms[n] = to_ms(cluster.sim.now()); });
  cluster.sim.run();
  return done_ms;
}

/// PhxPaxos baseline: the same file as 8 KB values through multi-Paxos
/// (majority quorum across all 8 nodes, leader at node 1).
double paxos_sync_ms(const Topology& topo, uint64_t file_size) {
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<paxos::PaxosNode>> nodes;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    paxos::PaxosOptions opts;
    for (NodeId m = 0; m < topo.num_nodes(); ++m) opts.members.push_back(m);
    opts.self = n;
    opts.start_as_leader = (n == 0);
    nodes.push_back(
        std::make_unique<paxos::PaxosNode>(opts, cluster.transport(n)));
  }
  // Establish leadership (Phase 1) before timing, like a warmed-up
  // PhxPaxos group.
  bool warm = false;
  nodes[0]->propose(to_bytes("warmup"), 0, [&](paxos::InstanceId) {
    warm = true;
  });
  sim.run();
  if (!warm) return -1;

  TimePoint start = sim.now();
  uint64_t chunks = (file_size + 8191) / 8192;
  uint64_t committed = 0;
  TimePoint done = kTimeZero;
  for (uint64_t c = 0; c < chunks; ++c) {
    uint64_t len = std::min<uint64_t>(8192, file_size - c * 8192);
    nodes[0]->propose({}, len, [&](paxos::InstanceId) {
      if (++committed == chunks) done = sim.now();
    });
  }
  sim.run();
  return committed == chunks ? to_ms(done - start) : -1;
}

}  // namespace

int main() {
  print_header("bench_fig6_file_sync — predicates vs PhxPaxos",
               "Fig 6 of the paper");

  Topology topo = ec2_topology();
  const std::vector<std::string> pred_names = {"MajorityRegions",
                                               "MajorityWNodes", "OneWNode"};
  std::printf("\nfile synchronization completion time (ms), one file at a "
              "time:\n\n");
  std::printf("%12s %14s %14s %14s %14s %9s\n", "size (B)", "MajRegions",
              "MajWNodes", "OneWNode", "PhxPaxos", "improv.");

  Series improvements;
  Series overlap_ratio;
  for (uint64_t size : {1'000ULL, 10'000ULL, 100'000ULL, 1'000'000ULL,
                        10'000'000ULL, 100'000'000ULL}) {
    auto stab_ms = stabilizer_sync_ms(topo, size, pred_names);
    double paxos_ms = paxos_sync_ms(topo, size);
    double improv =
        (paxos_ms - stab_ms["MajorityRegions"]) / paxos_ms * 100.0;
    improvements.add(improv);
    overlap_ratio.add(stab_ms["MajorityWNodes"] / paxos_ms);
    std::printf("%12llu %14.1f %14.1f %14.1f %14.1f %8.1f%%\n",
                static_cast<unsigned long long>(size),
                stab_ms["MajorityRegions"], stab_ms["MajorityWNodes"],
                stab_ms["OneWNode"], paxos_ms, improv);
  }

  std::printf("\naverage MajorityRegions improvement over PhxPaxos: %.2f%%"
              " (paper: 24.75%%)\n",
              improvements.mean());
  std::printf("MajorityWNodes / PhxPaxos time ratio: %.2f .. %.2f "
              "(paper: curves mostly overlap)\n",
              overlap_ratio.min(), overlap_ratio.max());

  bool wins = improvements.min() > 0;
  bool overlaps = overlap_ratio.min() > 0.7 && overlap_ratio.max() < 1.4;
  std::printf("\nshape checks:\n");
  std::printf("  MajorityRegions beats PhxPaxos at every size: %s\n",
              wins ? "PASS" : "FAIL");
  std::printf("  MajorityWNodes ~= PhxPaxos:                   %s\n",
              overlaps ? "PASS" : "FAIL");
  return (wins && overlaps) ? 0 : 1;
}
