// E-MB: §VI-A "The performance overhead of the user-defined consistency
// mechanism" — compile and compute cost of predicates with 1..5 operators
// and 5..20 operands.
//
// Paper: max ~30 ms compilation (libgccjit) and ~0.2 ms computation with 5
// KTH_MIN operators and 20 operands. Our substitute pipeline (bytecode +
// specialization, DESIGN.md §3) compiles in microseconds and evaluates in
// nanoseconds; the shape (cost grows with operators x operands) is the
// reproduced result.
//
// Also runs E-AB2, the execution-strategy ablation (interpreter vs bytecode
// vs specialized), as google-benchmark microbenchmarks.
#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>

#include "backup/backup_service.hpp"
#include "bench_common.hpp"
#include "control/ack_table.hpp"
#include "control/stability_types.hpp"
#include "dsl/predicate.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

Topology big_topology(size_t n) {
  Topology topo;
  for (size_t i = 0; i < n; ++i)
    topo.add_node("n" + std::to_string(i + 1), "az" + std::to_string(i / 4));
  return topo;
}

/// A predicate with `ops` KTH_MIN operators over `operands` WAN nodes:
/// nested KTH_MIN calls, the innermost listing the operands — mirroring the
/// paper's "1 to 5 operators and 5 to 20 operands" sweep.
std::string make_predicate(int ops, int operands) {
  std::ostringstream inner;
  inner << "KTH_MIN(2";
  for (int i = 1; i <= operands; ++i) inner << ",$" << i;
  inner << ")";
  std::string pred = inner.str();
  for (int o = 1; o < ops; ++o) pred = "KTH_MIN(1," + pred + ",$1)";
  return pred;
}

dsl::PredicateContext make_ctx(const Topology& topo,
                               StabilityTypeRegistry& types) {
  dsl::PredicateContext ctx;
  ctx.topology = &topo;
  ctx.self = 0;
  ctx.resolve_type = [&types](const std::string& name) {
    return std::optional<StabilityTypeId>(types.get_or_register(name));
  };
  return ctx;
}

void paper_style_sweep() {
  print_header("bench_dsl_overhead — DSL compile & compute cost",
               "the §VI-A microbenchmark (1-5 operators x 5-20 operands)");

  Topology topo = big_topology(20);
  StabilityTypeRegistry types;
  auto ctx = make_ctx(topo, types);

  AckTable acks(20);
  Rng rng(1);
  for (NodeId n = 0; n < 20; ++n)
    acks.update(StabilityTypeRegistry::kReceived, n, rng.next_range(0, 1000));

  std::printf("\n%8s %9s | %12s %12s\n", "ops", "operands", "compile (us)",
              "eval (ns)");
  for (int ops : {1, 2, 3, 4, 5}) {
    for (int operands : {5, 10, 15, 20}) {
      std::string src = make_predicate(ops, operands);
      // compile cost (averaged)
      constexpr int kCompiles = 200;
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCompiles; ++i) {
        auto p = dsl::Predicate::compile(src, ctx);
        benchmark::DoNotOptimize(p);
      }
      double compile_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count() /
                          kCompiles;
      // eval cost
      auto p = dsl::Predicate::compile(src, ctx);
      constexpr int kEvals = 200000;
      int64_t acc = 0;
      t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kEvals; ++i) acc += p.value().eval(acks);
      double eval_ns = std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - t0)
                           .count() /
                       kEvals;
      benchmark::DoNotOptimize(acc);
      std::printf("%8d %9d | %12.2f %12.1f\n", ops, operands, compile_us,
                  eval_ns);
    }
  }
  std::printf(
      "\nPaper (libgccjit): max ~30 ms compile / ~0.2 ms eval at 5 ops x 20\n"
      "operands. Substitute pipeline keeps the same growth shape at ~1000x\n"
      "lower absolute cost (no external compiler invocation).\n\n");
}

// --- E-AB2: execution-strategy ablation (google-benchmark) ------------------

struct AblationFixture {
  AblationFixture() : topo(ec2_topology()), acks(8) {
    ctx = make_ctx(topo, types);
    Rng rng(7);
    for (StabilityTypeId t = 0; t < 2; ++t)
      for (NodeId n = 0; n < 8; ++n) acks.update(t, n, rng.next_range(0, 500));
  }
  Topology topo;
  StabilityTypeRegistry types;
  dsl::PredicateContext ctx;
  AckTable acks;
};

void bench_eval(benchmark::State& state, dsl::EvalMode mode,
                const char* src) {
  static AblationFixture fixture;
  auto p = dsl::Predicate::compile(src, fixture.ctx, mode);
  if (!p.is_ok()) {
    state.SkipWithError(p.message().c_str());
    return;
  }
  for (auto _ : state) {
    int64_t v = p.value().eval(fixture.acks);
    benchmark::DoNotOptimize(v);
  }
}

const char* kMajority = "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))";
const char* kRegions =
    "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))";
const char* kNested =
    "MIN(MIN($MYAZWNODES-$MYWNODE),MAX($ALLWNODES-$MYAZWNODES),"
    "KTH_MAX(2,$ALLWNODES.persisted))";

}  // namespace

BENCHMARK_CAPTURE(bench_eval, majority_interpreter,
                  dsl::EvalMode::kInterpreter, kMajority);
BENCHMARK_CAPTURE(bench_eval, majority_bytecode, dsl::EvalMode::kBytecode,
                  kMajority);
BENCHMARK_CAPTURE(bench_eval, majority_specialized,
                  dsl::EvalMode::kSpecialized, kMajority);
BENCHMARK_CAPTURE(bench_eval, regions_interpreter,
                  dsl::EvalMode::kInterpreter, kRegions);
BENCHMARK_CAPTURE(bench_eval, regions_bytecode, dsl::EvalMode::kBytecode,
                  kRegions);
BENCHMARK_CAPTURE(bench_eval, regions_specialized,
                  dsl::EvalMode::kSpecialized, kRegions);
BENCHMARK_CAPTURE(bench_eval, nested_interpreter, dsl::EvalMode::kInterpreter,
                  kNested);
BENCHMARK_CAPTURE(bench_eval, nested_bytecode, dsl::EvalMode::kBytecode,
                  kNested);
BENCHMARK_CAPTURE(bench_eval, nested_specialized,
                  dsl::EvalMode::kSpecialized, kNested);

int main(int argc, char** argv) {
  paper_style_sweep();
  std::printf("E-AB2 ablation: tree-walking interpreter vs bytecode VM vs\n"
              "specialized fast path, on the Table III predicate shapes:\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
