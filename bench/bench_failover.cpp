// Failover unavailability decomposition (DESIGN.md §6): after the primary
// of a guarded stream fail-stops, how long until (a) a mirror suspects it,
// (b) the Paxos-elected successor finishes reconciliation and adopts the
// stream, and (c) a frontier predicate over the survivors certifies the
// first sequence issued under the new epoch — the first stable read.
//
// The experiment sweeps the lease window (lease_interval, with
// lease_timeout = 5x interval, the FailoverOptions default ratio) because
// detection latency is the window's direct product: the mirror cannot tell
// a dead primary from a slow one before lease_timeout expires. Promotion
// adds the roughly constant election tail (suspect_gather + one Paxos
// commit + the reconciliation round), and the first stable read adds one
// more publish + ack round under the adjusted predicate
// MIN($ALLWNODES-$1) (the paper's §III-E reaction, applied here the
// moment a survivor's own detector fires, not by an oracle).
//
// Writes BENCH_failover.json (committed artifact, EXPERIMENTS.md "Failover
// unavailability" section).
#include <algorithm>

#include "bench_common.hpp"
#include "failover/failover.hpp"
#include "sim/chaos.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

StabilizerOptions base_options() {
  StabilizerOptions base;
  base.ack_interval = millis(2);
  base.retransmit_timeout = millis(150);
  base.broadcast_acks = true;
  return base;
}

Topology mesh4() {
  Topology t;
  for (int i = 0; i < 4; ++i)
    t.add_node("n" + std::to_string(i), "r" + std::to_string(i));
  LinkSpec s;
  s.latency = from_ms(10);
  s.bandwidth_bps = mbps(100);
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

struct FailoverTimes {
  double detection_ms = -1;     // kill -> first survivor suspicion
  double promotion_ms = -1;     // kill -> winner adopted the stream
  double first_stable_ms = -1;  // kill -> survivors certify a new-epoch seq
};

// One campaign: node 0 owns stream 0 under traffic, fail-stops at `kill`,
// survivors detect / elect / promote, and the winner keeps publishing
// until the adjusted "all" frontier covers its first new sequence.
FailoverTimes run_campaign(Duration lease_interval, Duration lease_timeout) {
  Topology topo = mesh4();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);

  std::vector<std::unique_ptr<Stabilizer>> nodes;
  std::vector<std::unique_ptr<failover::FailoverManager>> managers;
  for (NodeId n = 0; n < 4; ++n) {
    StabilizerOptions opts = base_options();
    opts.topology = topo;
    opts.self = n;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    if (!nodes.back()->register_predicate("all", "MIN($ALLWNODES)"))
      std::abort();
  }
  for (NodeId n = 0; n < 4; ++n) {
    failover::FailoverOptions fo;
    fo.stream = 0;
    fo.lease_interval = lease_interval;
    fo.lease_timeout = lease_timeout;
    managers.push_back(
        std::make_unique<failover::FailoverManager>(fo, *nodes[n]));
    managers.back()->start();
  }

  const TimePoint kill = seconds(3);
  sim::ChaosSchedule chaos(sim, cluster.network());
  chaos.set_crash_handler([&](NodeId n) {
    managers[n].reset();
    nodes[n].reset();
    cluster.transport(n).detach();
  });
  sim::ChaosScript script;
  sim::add_kill(script, kill, 0);
  sim::finalize_script(script);
  chaos.arm(script);

  // Stream-0 traffic every 10 ms: the primary while it lives, then the
  // promoted successor (send_as under the new epoch).
  struct Pump {
    static void arm(sim::Simulator& sim,
                    std::vector<std::unique_ptr<Stabilizer>>& nodes,
                    std::vector<std::unique_ptr<failover::FailoverManager>>&
                        managers) {
      sim.schedule_after(millis(10), [&sim, &nodes, &managers] {
        if (nodes[0]) {
          nodes[0]->send(to_bytes("payload"));
        } else {
          for (NodeId id = 1; id < 4; ++id)
            if (managers[id] && managers[id]->promoted()) {
              nodes[id]->send_as(0, to_bytes("payload"));
              break;
            }
        }
        arm(sim, nodes, managers);
      });
    }
  };
  Pump::arm(sim, nodes, managers);

  // §III-E reaction: each survivor drops the dead node from "all" as soon
  // as its OWN detector fires — no oracle, the adjust rides the lease
  // timeout like it would in production.
  std::vector<bool> adjusted(4, false);
  struct Adjust {
    static void arm(sim::Simulator& sim,
                    std::vector<std::unique_ptr<Stabilizer>>& nodes,
                    std::vector<std::unique_ptr<failover::FailoverManager>>&
                        managers,
                    std::vector<bool>& adjusted) {
      sim.schedule_after(millis(5), [&] {
        for (NodeId id = 1; id < 4; ++id) {
          if (adjusted[id] || !managers[id]) continue;
          if (managers[id]->stats().suspicions == 0) continue;
          if (!nodes[id]->change_predicate("all", "MIN($ALLWNODES-$1)"))
            std::abort();
          adjusted[id] = true;
        }
        arm(sim, nodes, managers, adjusted);
      });
    }
  };
  Adjust::arm(sim, nodes, managers, adjusted);

  // Run until the survivors certify a sequence issued under epoch 1: the
  // winner must have adopted, published at least one new seq, and every
  // survivor's adjusted "all" frontier must cover it.
  NodeId winner = kInvalidNode;
  SeqNum target = kNoSeq;
  auto first_stable = [&] {
    if (winner == kInvalidNode) {
      for (NodeId id = 1; id < 4; ++id)
        if (managers[id] && managers[id]->promoted()) {
          winner = id;
          target = nodes[id]->acting_last_sent(0) + 1;
        }
      if (winner == kInvalidNode) return false;
    }
    if (nodes[winner]->acting_last_sent(0) < target) return false;
    for (NodeId id = 1; id < 4; ++id)
      if (nodes[id]->get_stability_frontier("all", 0) < target) return false;
    return true;
  };
  if (!sim.run_until_pred(first_stable, kill + seconds(60)))
    return {};  // wedged — reported as -1 across the row

  FailoverTimes out;
  out.first_stable_ms = to_ms(sim.now() - kill);
  TimePoint suspected{};
  for (NodeId id = 1; id < 4; ++id) {
    TimePoint s = managers[id]->stats().suspected_at;
    if (s != TimePoint{} && (suspected == TimePoint{} || s < suspected))
      suspected = s;
  }
  if (suspected != TimePoint{}) out.detection_ms = to_ms(suspected - kill);
  TimePoint promoted = managers[winner]->stats().promoted_at;
  if (promoted != TimePoint{}) out.promotion_ms = to_ms(promoted - kill);

  managers.clear();  // managers reference the nodes; drop them first
  return out;
}

}  // namespace

int main() {
  print_header("bench_failover — kill -> detection / promotion / stable read",
               "DESIGN.md §6 failover unavailability");

  std::printf(
      "\n4 nodes, 10 ms links. Node 0 owns stream 0 (10 ms publish cadence)\n"
      "and fail-stops at t=3 s; lease_timeout = 5 x lease_interval.\n"
      "All columns are virtual ms measured from the kill instant.\n\n");
  std::printf("%-18s %-14s %12s %12s %14s\n", "lease interval", "timeout",
              "detect (ms)", "promote (ms)", "stable (ms)");

  struct Row {
    double interval_ms, timeout_ms;
    FailoverTimes t;
  };
  std::vector<Row> rows;
  for (double interval_ms : {50.0, 100.0, 200.0, 400.0}) {
    Duration interval = from_ms(interval_ms);
    Duration timeout = from_ms(5 * interval_ms);
    FailoverTimes t = run_campaign(interval, timeout);
    rows.push_back({interval_ms, 5 * interval_ms, t});
    std::printf("%-18.0f %-14.0f %12.1f %12.1f %14.1f\n", interval_ms,
                5 * interval_ms, t.detection_ms, t.promotion_ms,
                t.first_stable_ms);
  }

  std::printf(
      "\nShape check: detection tracks the lease timeout (the mirror must\n"
      "wait out the full silence window); promotion adds a near-constant\n"
      "election tail (gather + Paxos commit + reconciliation); the stable\n"
      "read adds one publish + ack round under MIN($ALLWNODES-$1).\n");

  std::FILE* json = std::fopen("BENCH_failover.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_failover.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"lease_interval_ms\": %.0f, \"lease_timeout_ms\": "
                 "%.0f, \"detection_ms\": %.1f, \"promotion_ms\": %.1f, "
                 "\"first_stable_read_ms\": %.1f}%s\n",
                 r.interval_ms, r.timeout_ms, r.t.detection_ms,
                 r.t.promotion_ms, r.t.first_stable_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  double max_overhead = 0;  // worst promote -> stable tail across windows
  double min_detect_slack = 1e18;
  bool all_ok = true;
  for (const Row& r : rows) {
    if (r.t.first_stable_ms < 0) all_ok = false;
    max_overhead = std::max(max_overhead,
                            r.t.first_stable_ms - r.t.promotion_ms);
    min_detect_slack =
        std::min(min_detect_slack, r.t.detection_ms - r.timeout_ms);
  }
  std::fprintf(json,
               "  ],\n  \"election_tail_ms_max\": %.1f,\n"
               "  \"detection_minus_timeout_ms_min\": %.1f,\n"
               "  \"all_windows_recovered\": %s\n}\n",
               max_overhead, min_detect_slack, all_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote BENCH_failover.json\n");
  return all_ok ? 0 : 1;
}
