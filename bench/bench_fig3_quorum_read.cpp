// E-F3: Fig 3 — latency of the quorum read operation vs message size.
//
// Setup per §VI-A: three quorum server processes on Utah1, Wisconsin, and
// Clemson; writer on Utah2, reader on Utah1; Nr = Nw = 2. Message sizes
// 1..64 KB. The paper's observation: read latency is comparable to the RTT
// of Wisconsin (the second-fastest quorum member from Utah), rising slightly
// with message size.
#include "bench_common.hpp"
#include "quorum/quorum_kv.hpp"

using namespace stab;
using namespace stab::bench;
using namespace stab::quorum;

int main() {
  print_header("bench_fig3_quorum_read — quorum read latency",
               "Fig 3 of the paper");

  Topology topo = cloudlab_topology();
  std::printf("\nRTT baselines (dashed lines in the figure):\n");
  std::printf("  Utah1 -> Utah2      %7.3f ms\n", 0.124);
  std::printf("  Utah1 -> Wisconsin  %7.3f ms\n", 35.612);
  std::printf("  Utah1 -> Clemson    %7.3f ms\n\n", 50.918);

  std::printf("%-18s %16s\n", "message size (KB)", "read latency (ms)");
  for (int kb : {1, 2, 4, 8, 16, 32, 64}) {
    sim::Simulator sim;
    SimCluster cluster(topo, sim);
    QuorumOptions q;
    q.servers = {cloudlab::kUtah1, cloudlab::kWisconsin, cloudlab::kClemson};
    q.read_quorum = 2;
    q.write_quorum = 2;
    std::vector<std::unique_ptr<Stabilizer>> stabs;
    std::vector<std::unique_ptr<QuorumNode>> nodes;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      StabilizerOptions opts;
      opts.topology = topo;
      opts.self = n;
      stabs.push_back(
          std::make_unique<Stabilizer>(opts, cluster.transport(n)));
      nodes.push_back(std::make_unique<QuorumNode>(*stabs.back(), q));
    }

    // Writer on Utah2 commits a value of the given size.
    Bytes value(static_cast<size_t>(kb) * 1024, 0x5a);
    bool committed = false;
    nodes[cloudlab::kUtah2]->write("obj", value,
                                   [&](uint64_t) { committed = true; });
    sim.run();
    if (!committed) {
      std::printf("write failed to commit!\n");
      return 1;
    }

    // Reader on Utah1 issues the quorum read.
    Series lat;
    for (int rep = 0; rep < 5; ++rep) {
      TimePoint start = sim.now();
      bool done = false;
      nodes[cloudlab::kUtah1]->read("obj", [&](ReadResult r) {
        if (!r.found) std::printf("  read miss!\n");
        lat.add(to_ms(sim.now() - start));
        done = true;
      });
      sim.run();
      if (!done) return 1;
    }
    std::printf("%-18d %16.3f\n", kb, lat.mean());
  }
  std::printf(
      "\nShape check: latency ~= RTT(Wisconsin) = 35.6 ms at small sizes —\n"
      "Utah1 answers locally and Wisconsin's response completes the 2-read\n"
      "quorum — with a slight rise as the response payload grows (Fig 3).\n");
  return 0;
}
