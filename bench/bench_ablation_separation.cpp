// E-AB1: ablation — control-plane / data-plane separation.
//
// The paper's §III-B claim: Stabilizer "maximizes utilization of WAN
// bandwidth by sending data aggressively as soon as it has been assigned a
// sequence number ... in contrast with classic WAN consistency mechanisms,
// such as protocols based on Paxos, that block message sending when all
// leaders are busy exchanging control information."
//
// This ablation runs the same workload (2,000 x 8 KB messages, EC2
// topology, MajorityWNodes stability for every message) in two modes:
//   * separated — the data plane streams at full speed; the control plane
//     confirms asynchronously (Stabilizer's design);
//   * lockstep  — message i+1 is sent only after message i reached
//     majority stability (control information on the critical path).
#include "backup/backup_service.hpp"
#include "bench_common.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

constexpr int kMessages = 2'000;
constexpr uint64_t kMsgSize = 8 * 1024;

struct RunResult {
  double total_s = 0;
  double goodput_mbps = 0;
  double mean_stability_ms = 0;
};

RunResult run(bool lockstep) {
  Topology topo = ec2_topology();
  StabilizerOptions base;
  base.broadcast_acks = false;
  base.ack_interval = millis(2);
  StabCluster cluster(topo, base);
  Stabilizer& sender = cluster.node(0);
  auto preds = backup::BackupService::standard_predicates(topo, 0);
  sender.register_predicate("majority", preds["MajorityWNodes"]);

  Series stability_ms;
  int completed = 0;
  TimePoint done = kTimeZero;

  std::function<void()> send_next = [&] {
    TimePoint start = cluster.sim.now();
    SeqNum seq = sender.send({}, kMsgSize);
    sender.waitfor(seq, "majority", [&, start](SeqNum) {
      stability_ms.add(to_ms(cluster.sim.now() - start));
      if (++completed == kMessages) done = cluster.sim.now();
      if (lockstep && completed < kMessages) send_next();
    });
  };

  if (lockstep) {
    send_next();  // chain: control round-trip gates each next send
  } else {
    for (int m = 0; m < kMessages; ++m) send_next();  // stream everything
  }
  cluster.sim.run();

  RunResult out;
  out.total_s = to_sec(done);
  out.goodput_mbps = kMessages * kMsgSize * 8.0 / 1e6 / out.total_s;
  out.mean_stability_ms = stability_ms.mean();
  return out;
}

/// E-AB3: control-plane batching ablation. Monotonic counters make ACK
/// coalescing lossless (§III-A); this quantifies the latency/traffic
/// trade-off of the batching interval.
void ack_interval_sweep() {
  std::printf("\n--- E-AB3: ack batching interval (monotonic coalescing) "
              "---\n\n");
  std::printf("%14s %22s %18s\n", "interval", "mean stability (ms)",
              "ack batches sent");
  for (int64_t us : {0LL, 100LL, 1000LL, 2000LL, 10000LL, 50000LL}) {
    Topology topo = ec2_topology();
    StabilizerOptions base;
    base.broadcast_acks = false;
    base.ack_interval = micros(us);
    StabCluster cluster(topo, base);
    Stabilizer& sender = cluster.node(0);
    auto preds = backup::BackupService::standard_predicates(topo, 0);
    sender.register_predicate("majority", preds["MajorityWNodes"]);

    Series stability_ms;
    const int kCount = 500;
    for (int m = 0; m < kCount; ++m) {
      cluster.sim.schedule_at(millis(m * 5), [&] {
        TimePoint start = cluster.sim.now();
        SeqNum seq = sender.send({}, kMsgSize);
        sender.waitfor(seq, "majority", [&, start](SeqNum) {
          stability_ms.add(to_ms(cluster.sim.now() - start));
        });
      });
    }
    cluster.sim.run();
    uint64_t batches = 0;
    for (auto& node : cluster.nodes) batches += node->stats().ack_batches_sent;
    std::printf("%11lld us %22.2f %18llu\n", static_cast<long long>(us),
                stability_ms.mean(), static_cast<unsigned long long>(batches));
  }
  std::printf("\nLarger intervals coalesce more reports into fewer control\n"
              "frames at a bounded latency cost — the reason overwriting\n"
              "monotonic reports is safe and cheap.\n");
}

}  // namespace

int main() {
  print_header("bench_ablation_separation — control/data plane separation",
               "the §III-B design claim (ablation, not a paper figure)");

  std::printf("\nworkload: %d x 8 KB messages to 7 mirrors, majority "
              "stability each\n\n",
              kMessages);
  RunResult sep = run(false);
  RunResult lock = run(true);

  std::printf("%-12s %14s %16s %20s\n", "mode", "total (s)",
              "goodput (Mb/s)", "mean stability (ms)");
  std::printf("%-12s %14.2f %16.1f %20.1f\n", "separated", sep.total_s,
              sep.goodput_mbps, sep.mean_stability_ms);
  std::printf("%-12s %14.2f %16.1f %20.1f\n", "lockstep", lock.total_s,
              lock.goodput_mbps, lock.mean_stability_ms);
  std::printf("\nseparation speedup: %.1fx\n", lock.total_s / sep.total_s);

  bool pass = sep.total_s < lock.total_s / 4;
  std::printf("\nshape check: asynchronous control plane >= 4x faster under "
              "sustained load: %s\n",
              pass ? "PASS" : "FAIL");

  ack_interval_sweep();
  return pass ? 0 : 1;
}
