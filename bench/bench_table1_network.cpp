// E-T1 / E-F2: Table I (EC2 network status between North California and the
// other regions) and Fig 2 (the 4-region / 8-node topology).
//
// Validates the simulated substrate: configured link parameters are probed
// through the simulator exactly the way the paper measured the emulated
// network — ping RTT and a bulk transfer for throughput — and printed next
// to Table I's values.
#include "bench_common.hpp"

using namespace stab;
using namespace stab::bench;

namespace {

struct Probe {
  double rtt_ms;
  double thp_mbps;
};

/// Ping + bulk-transfer probe from `src` to `dst` on a fresh simulation.
Probe probe_link(const Topology& topo, NodeId src, NodeId dst) {
  Probe out{};
  {  // RTT: tiny frame there and back through raw transports.
    sim::Simulator sim;
    SimCluster cluster(topo, sim);
    TimePoint pong_at = kTimeZero;
    cluster.transport(dst).set_receive_handler(
        [&](NodeId from, BytesView, uint64_t) {
          cluster.transport(dst).send(from, to_bytes("pong"));
        });
    cluster.transport(src).set_receive_handler(
        [&](NodeId, BytesView, uint64_t) { pong_at = sim.now(); });
    cluster.transport(src).send(dst, to_bytes("ping"));
    sim.run();
    out.rtt_ms = to_ms(pong_at);
  }
  {  // Throughput: 32 MB bulk transfer, measure delivered bytes / time.
    sim::Simulator sim;
    SimCluster cluster(topo, sim);
    const uint64_t total = 32ULL << 20;
    const uint64_t chunk = 64 * 1024;
    uint64_t received = 0;
    TimePoint last = kTimeZero;
    cluster.transport(dst).set_receive_handler(
        [&](NodeId, BytesView, uint64_t wire) {
          received += wire;
          last = sim.now();
        });
    for (uint64_t off = 0; off < total; off += chunk)
      cluster.transport(src).send(dst, Bytes(), chunk);
    sim.run();
    out.thp_mbps = received * 8.0 / 1e6 / to_sec(last);
  }
  return out;
}

}  // namespace

int main() {
  print_header("bench_table1_network — emulated EC2 WAN substrate",
               "Table I and Fig 2 of the paper");

  Topology topo = ec2_topology();
  std::printf("\nFig 2 topology (reconstructed region membership):\n%s\n",
              topo.describe().c_str());

  std::printf("Table I: network status between North California (node 1) "
              "and other regions\n");
  std::printf("  paper values are RTT and HALF-throttled throughput; the\n"
              "  simulator is configured from them, probes must match.\n\n");
  std::printf("%-22s %14s %14s | %14s %14s\n", "peer",
              "paper Lat(ms)", "paper Thp(Mb)", "probe RTT(ms)",
              "probe Thp(Mb)");

  struct Row {
    const char* label;
    NodeId dst;
    double paper_rtt;
    double paper_thp;
  };
  const Row rows[] = {
      {"North California (n2)", 1, 3.7, 333.5},
      {"Ohio (n8)", 7, 53.87, 44.5},
      {"Oregon (n7)", 6, 23.29, 56.5},
      {"North Virginia (n3)", 2, 64.12, 37.0},
  };
  bool all_ok = true;
  for (const Row& row : rows) {
    Probe p = probe_link(topo, 0, row.dst);
    bool ok = std::abs(p.rtt_ms - row.paper_rtt) < 0.5 &&
              std::abs(p.thp_mbps - row.paper_thp) / row.paper_thp < 0.02;
    all_ok = all_ok && ok;
    std::printf("%-22s %14.2f %14.1f | %14.2f %14.1f  %s\n", row.label,
                row.paper_rtt, row.paper_thp, p.rtt_ms, p.thp_mbps,
                ok ? "match" : "MISMATCH");
  }
  std::printf("\nsubstrate check: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
