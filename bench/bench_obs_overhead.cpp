// Observability overhead bench: what does the obs layer cost on the data
// hot path?
//
// One origin broadcasts M small payloads across a 5-node zero-loss sim mesh
// (the same workload shape as bench_data_hotpath's headline cell) in two
// modes built from the identical binary:
//   * plain  — instrumentation compiled per the build flavor, no tracer
//              attached (the always-on cost: relaxed counter increments),
//   * traced — a shared Tracer subscribed to every SpanEvent (the opt-in
//              cost: one mutex + 64-byte append per span record).
// The binary prints which flavor it was compiled as (STAB_OBS=ON/OFF) and
// writes BENCH_obs_overhead.json. The acceptance numbers compare across two
// builds of this same binary:
//   * ON plain vs OFF plain  — must be <= 3% throughput regression,
//   * OFF plain vs the seed  — the compiled-out flavor must be free
//     (<= 0.5%; the macros expand to `do { } while(0)`).
// EXPERIMENTS.md "Observability overhead" records both; the committed
// BENCH_obs_overhead.json merges the two flavors' outputs. Cross-binary
// ratios are computed offline, so this bench never exits nonzero on a
// threshold — it only reports.
#include <ctime>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "config/topology.hpp"
#include "obs/obs.hpp"
#if STAB_OBS_ENABLED
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace stab::bench {
namespace {

Topology mesh(size_t n) {
  Topology topo;
  for (size_t i = 0; i < n; ++i)
    topo.add_node("n" + std::to_string(i), "az" + std::to_string(i % 3));
  LinkSpec link;
  link.latency = millis(1);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) topo.set_link(a, b, link);
  return topo;
}

struct CaseResult {
  double cpu_ms = 0;
  double msgs_per_sec = 0;
  uint64_t trace_records = 0;
};

// Process CPU time: the sim workload is single-threaded, so CPU time is the
// work actually done and is far more repeatable than wall clock on a busy
// host (scheduler noise would otherwise swamp a 3% acceptance threshold).
double cpu_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

CaseResult run_case(size_t nodes, size_t payload_size, size_t msgs,
                    bool traced, bool dump_metrics) {
  StabilizerOptions base;
#if STAB_OBS_ENABLED
  std::shared_ptr<obs::Tracer> tracer;
  if (traced) {
    tracer = std::make_shared<obs::Tracer>(size_t{1} << 22, obs::kAllEvents);
    base.tracer = tracer;
  }
#else
  (void)traced;
#endif
  StabCluster c(mesh(nodes), base);

  std::vector<uint64_t> delivered(nodes, 0);
  for (NodeId n = 1; n < nodes; ++n)
    c.node(n).set_delivery_handler(
        [&delivered, n](NodeId, SeqNum, BytesView, uint64_t) {
          ++delivered[n];
        });

  const Bytes payload(payload_size, 0xAB);
  auto all_delivered = [&] {
    for (NodeId n = 1; n < nodes; ++n)
      if (delivered[n] < msgs) return false;
    return true;
  };

  const double start_ms = cpu_now_ms();
  const size_t kBurst = 64;
  for (size_t sent = 0; sent < msgs;) {
    for (size_t i = 0; i < kBurst && sent < msgs; ++i, ++sent)
      c.node(0).send(payload);
    c.sim.run_until(c.sim.now() + millis(5));
  }
  if (!c.sim.run_until_pred(all_delivered, c.sim.now() + seconds(300))) {
    std::fprintf(stderr, "bench stalled: traced=%d\n", traced ? 1 : 0);
    std::exit(1);
  }
  CaseResult r;
  r.cpu_ms = cpu_now_ms() - start_ms;
  r.msgs_per_sec = static_cast<double>(msgs) / (r.cpu_ms / 1000.0);
#if STAB_OBS_ENABLED
  if (tracer) r.trace_records = tracer->size();
  if (dump_metrics)
    c.node(0).metrics().dump_table(std::cout, "sender metrics");
#else
  (void)dump_metrics;
#endif
  return r;
}

}  // namespace
}  // namespace stab::bench

int main(int argc, char** argv) {
  using namespace stab;
  using namespace stab::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int reps = smoke ? 1 : 5;
  const size_t kNodes = 5;
  const size_t kPayload = 64;
  const size_t msgs = smoke ? 512 : 8192;
  const bool obs_on = STAB_OBS_ENABLED != 0;

  print_header("Observability overhead: obs layer cost on the broadcast path",
               "ISSUE 5 acceptance — <=3% enabled, <=0.5% compiled out");
  std::printf("build flavor: STAB_OBS=%s\n", obs_on ? "ON" : "OFF");
  if (smoke) std::printf("(smoke mode: reduced workload)\n");

  struct Mode {
    const char* name;
    bool traced;
  };
  std::vector<Mode> modes = {{"plain", false}};
  if (obs_on) modes.push_back({"traced", true});

  std::FILE* json = std::fopen("BENCH_obs_overhead.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_obs_overhead.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"obs_enabled\": %s,\n  \"smoke\": %s,\n"
               "  \"nodes\": %zu,\n  \"payload\": %zu,\n"
               "  \"messages\": %zu,\n  \"rows\": [\n",
               obs_on ? "true" : "false", smoke ? "true" : "false", kNodes,
               kPayload, msgs);

  std::printf("%8s | %10s %9s | %13s\n", "mode", "msgs/s", "vs plain",
              "trace records");
  double plain_tput = 0;
  bool first_row = true;
  for (const Mode& m : modes) {
    CaseResult best;
    for (int rep = 0; rep < reps; ++rep) {
      CaseResult r = run_case(kNodes, kPayload, msgs, m.traced, false);
      if (rep == 0 || r.cpu_ms < best.cpu_ms) best = r;
    }
    if (!m.traced) plain_tput = best.msgs_per_sec;
    const double ratio = plain_tput > 0 ? best.msgs_per_sec / plain_tput : 0;
    std::printf("%8s | %10.0f %8.3fx | %13llu\n", m.name, best.msgs_per_sec,
                ratio, static_cast<unsigned long long>(best.trace_records));
    std::fprintf(json,
                 "%s    {\"mode\": \"%s\", \"cpu_ms\": %.2f, "
                 "\"msgs_per_sec\": %.0f, \"vs_plain\": %.4f, "
                 "\"trace_records\": %llu}",
                 first_row ? "" : ",\n", m.name, best.cpu_ms,
                 best.msgs_per_sec, ratio,
                 static_cast<unsigned long long>(best.trace_records));
    first_row = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);

  // Show the registry integration once (not timed): the table the chaos
  // campaign and EXPERIMENTS.md reference.
  if (obs_on && !smoke) run_case(kNodes, kPayload, 256, false, true);

  std::printf(
      "\nwrote BENCH_obs_overhead.json (flavor STAB_OBS=%s)\n"
      "compare msgs/s across an ON and an OFF build of this binary for the "
      "acceptance ratios.\n",
      obs_on ? "ON" : "OFF");
  return 0;
}
