// Observability overhead bench: what does the obs layer cost on the data
// hot path?
//
// One origin broadcasts M small payloads across a 5-node zero-loss sim mesh
// (the same workload shape as bench_data_hotpath's headline cell) in two
// modes built from the identical binary:
//   * plain  — instrumentation compiled per the build flavor, no tracer
//              attached (the always-on cost: relaxed counter increments),
//   * traced — a shared Tracer subscribed to every SpanEvent (the opt-in
//              cost: one mutex + 64-byte append per span record).
// The binary prints which flavor it was compiled as (STAB_OBS=ON/OFF) and
// writes BENCH_obs_overhead.json. The acceptance numbers compare across two
// builds of this same binary:
//   * ON plain vs OFF plain  — must be <= 3% throughput regression,
//   * OFF plain vs the seed  — the compiled-out flavor must be free
//     (<= 0.5%; the macros expand to `do { } while(0)`).
// EXPERIMENTS.md "Observability overhead" records both; the committed
// BENCH_obs_overhead.json merges the two flavors' outputs. Cross-binary
// ratios are computed offline, so this bench never exits nonzero on a
// threshold — it only reports.
#include <ctime>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "config/topology.hpp"
#include "obs/obs.hpp"
#if STAB_OBS_ENABLED
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace stab::bench {
namespace {

Topology mesh(size_t n) {
  Topology topo;
  for (size_t i = 0; i < n; ++i)
    topo.add_node("n" + std::to_string(i), "az" + std::to_string(i % 3));
  LinkSpec link;
  link.latency = millis(1);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) topo.set_link(a, b, link);
  return topo;
}

struct CaseResult {
  double cpu_ms = 0;
  double msgs_per_sec = 0;
  uint64_t trace_records = 0;
  uint64_t probe_deliver_spans = 0;
  uint64_t probe_stable_spans = 0;
};

// Process CPU time: the sim workload is single-threaded, so CPU time is the
// work actually done and is far more repeatable than wall clock on a busy
// host (scheduler noise would otherwise swamp a 3% acceptance threshold).
double cpu_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

CaseResult run_case(size_t nodes, size_t payload_size, size_t msgs,
                    bool traced, bool dump_metrics,
                    uint32_t probe_every = 0) {
  StabilizerOptions base;
#if STAB_OBS_ENABLED
  std::shared_ptr<obs::Tracer> tracer;
  if (traced) {
    tracer = std::make_shared<obs::Tracer>(size_t{1} << 22, obs::kAllEvents);
    base.tracer = tracer;
  }
  std::shared_ptr<obs::LatencyProbe> probe;
  if (probe_every > 0) {
    obs::LatencyProbeOptions popt;
    popt.sample_every = probe_every;
    probe = std::make_shared<obs::LatencyProbe>(popt);
    base.probe = probe;
  }
#else
  (void)traced;
  (void)probe_every;
#endif
  StabCluster c(mesh(nodes), base);
  // A registered predicate in every mode keeps the workload identical
  // across modes and gives the probe a frontier to close send→stable
  // spans against.
  c.node(0).register_predicate("everywhere", "MIN($ALLWNODES-$MYWNODE)");

  std::vector<uint64_t> delivered(nodes, 0);
  for (NodeId n = 1; n < nodes; ++n)
    c.node(n).set_delivery_handler(
        [&delivered, n](NodeId, SeqNum, BytesView, uint64_t) {
          ++delivered[n];
        });

  const Bytes payload(payload_size, 0xAB);
  auto all_delivered = [&] {
    for (NodeId n = 1; n < nodes; ++n)
      if (delivered[n] < msgs) return false;
    return true;
  };

  const double start_ms = cpu_now_ms();
  const size_t kBurst = 64;
  for (size_t sent = 0; sent < msgs;) {
    for (size_t i = 0; i < kBurst && sent < msgs; ++i, ++sent)
      c.node(0).send(payload);
    c.sim.run_until(c.sim.now() + millis(5));
  }
  if (!c.sim.run_until_pred(all_delivered, c.sim.now() + seconds(300))) {
    std::fprintf(stderr, "bench stalled: traced=%d\n", traced ? 1 : 0);
    std::exit(1);
  }
  CaseResult r;
  r.cpu_ms = cpu_now_ms() - start_ms;
  r.msgs_per_sec = static_cast<double>(msgs) / (r.cpu_ms / 1000.0);
#if STAB_OBS_ENABLED
  if (tracer) r.trace_records = tracer->size();
  if (probe) {
    if (const obs::Histogram* h =
            probe->registry().find_histogram("probe.send_to_deliver"))
      r.probe_deliver_spans = h->count();
    for (const std::string& name : probe->registry().names())
      if (name.rfind("probe.send_to_stable.", 0) == 0)
        if (const obs::Histogram* h = probe->registry().find_histogram(name))
          r.probe_stable_spans += h->count();
  }
  if (dump_metrics)
    c.node(0).metrics().dump_table(std::cout, "sender metrics");
#else
  (void)dump_metrics;
#endif
  return r;
}

#if STAB_OBS_ENABLED
// Cost of the scrape-side windowed machinery: one advance_windows (closing
// an epoch over every probe histogram) plus one windowed percentile read,
// measured over a probe populated by real traffic. This is pure exporter
// cost — it never sits on the data path — but a scraper calls it per
// scrape, so its absolute cost belongs in the report.
double windowed_snapshot_ns() {
  obs::LatencyProbeOptions popt;
  popt.sample_every = 1;
  auto probe = std::make_shared<obs::LatencyProbe>(popt);
  StabilizerOptions base;
  base.probe = probe;
  StabCluster c(mesh(3), base);
  c.node(0).register_predicate("everywhere", "MIN($ALLWNODES-$MYWNODE)");
  const Bytes payload(64, 0xAB);
  for (int i = 0; i < 512; ++i) c.node(0).send(payload);
  c.sim.run_until(c.sim.now() + seconds(2));

  const int kIters = 2000;
  TimePoint t = c.sim.now();
  uint64_t sink = 0;
  const double start = cpu_now_ms();
  for (int i = 0; i < kIters; ++i) {
    t += millis(250);
    probe->advance_windows(t);
    sink += probe->windowed("probe.send_to_deliver").p999;
  }
  const double ms = cpu_now_ms() - start;
  if (sink == uint64_t(-1)) std::printf("unreachable\n");
  return ms * 1e6 / kIters;
}
#endif

}  // namespace
}  // namespace stab::bench

int main(int argc, char** argv) {
  using namespace stab;
  using namespace stab::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int reps = smoke ? 1 : 7;
  const size_t kNodes = 5;
  const size_t kPayload = 64;
  const size_t msgs = smoke ? 512 : 8192;
  const bool obs_on = STAB_OBS_ENABLED != 0;

  print_header("Observability overhead: obs layer cost on the broadcast path",
               "ISSUE 5 acceptance — <=3% enabled, <=0.5% compiled out");
  std::printf("build flavor: STAB_OBS=%s\n", obs_on ? "ON" : "OFF");
  if (smoke) std::printf("(smoke mode: reduced workload)\n");

  struct Mode {
    const char* name;
    bool traced;
    uint32_t probe_every;
  };
  std::vector<Mode> modes = {{"plain", false, 0}};
  if (obs_on) {
    modes.push_back({"traced", true, 0});
    // Probe modes (ISSUE 8): the online latency-join at the two pinned
    // sampling rates. probe16 is the acceptance configuration (total
    // enabled overhead <= 3.5% vs an OFF build's plain mode).
    modes.push_back({"probe16", false, 16});
    modes.push_back({"probe256", false, 256});
  }

  std::FILE* json = std::fopen("BENCH_obs_overhead.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_obs_overhead.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"obs_enabled\": %s,\n  \"smoke\": %s,\n"
               "  \"nodes\": %zu,\n  \"payload\": %zu,\n"
               "  \"messages\": %zu,\n  \"rows\": [\n",
               obs_on ? "true" : "false", smoke ? "true" : "false", kNodes,
               kPayload, msgs);

  std::FILE* latency_json = std::fopen("BENCH_obs_latency.json", "w");
  if (!latency_json) {
    std::fprintf(stderr, "cannot open BENCH_obs_latency.json\n");
    return 1;
  }
  std::fprintf(latency_json,
               "{\n  \"obs_enabled\": %s,\n  \"smoke\": %s,\n"
               "  \"nodes\": %zu,\n  \"payload\": %zu,\n"
               "  \"messages\": %zu,\n  \"rows\": [\n",
               obs_on ? "true" : "false", smoke ? "true" : "false", kNodes,
               kPayload, msgs);

  std::printf("%9s | %10s %9s | %13s | %9s %9s\n", "mode", "msgs/s",
              "vs plain", "trace records", "dlv spans", "stb spans");
  // Interleave reps round-robin across modes (one warm-up rep discarded),
  // taking the best CPU time per mode. Running each mode's reps
  // back-to-back lets slow drift (frequency scaling, cache warmth, host
  // noise) bias whole modes; interleaving spreads the drift evenly so the
  // best-of comparison is apples-to-apples.
  std::vector<CaseResult> best(modes.size());
  for (int rep = 0; rep < reps + 1; ++rep) {
    for (size_t mi = 0; mi < modes.size(); ++mi) {
      const Mode& m = modes[mi];
      CaseResult r =
          run_case(kNodes, kPayload, msgs, m.traced, false, m.probe_every);
      if (rep == 0) continue;  // warm-up
      if (rep == 1 || r.cpu_ms < best[mi].cpu_ms) best[mi] = r;
    }
  }
  double plain_tput = 0;
  bool first_row = true;
  bool first_latency_row = true;
  for (size_t mi = 0; mi < modes.size(); ++mi) {
    const Mode& m = modes[mi];
    if (!m.traced && m.probe_every == 0) plain_tput = best[mi].msgs_per_sec;
    const double ratio =
        plain_tput > 0 ? best[mi].msgs_per_sec / plain_tput : 0;
    std::printf("%9s | %10.0f %8.3fx | %13llu | %9llu %9llu\n", m.name,
                best[mi].msgs_per_sec, ratio,
                static_cast<unsigned long long>(best[mi].trace_records),
                static_cast<unsigned long long>(best[mi].probe_deliver_spans),
                static_cast<unsigned long long>(best[mi].probe_stable_spans));
    if (m.probe_every == 0) {
      std::fprintf(json,
                   "%s    {\"mode\": \"%s\", \"cpu_ms\": %.2f, "
                   "\"msgs_per_sec\": %.0f, \"vs_plain\": %.4f, "
                   "\"trace_records\": %llu}",
                   first_row ? "" : ",\n", m.name, best[mi].cpu_ms,
                   best[mi].msgs_per_sec, ratio,
                   static_cast<unsigned long long>(best[mi].trace_records));
      first_row = false;
    }
    std::fprintf(latency_json,
                 "%s    {\"mode\": \"%s\", \"sample_every\": %u, "
                 "\"cpu_ms\": %.2f, \"msgs_per_sec\": %.0f, "
                 "\"vs_plain\": %.4f, \"deliver_spans\": %llu, "
                 "\"stable_spans\": %llu}",
                 first_latency_row ? "" : ",\n", m.name, m.probe_every,
                 best[mi].cpu_ms, best[mi].msgs_per_sec, ratio,
                 static_cast<unsigned long long>(best[mi].probe_deliver_spans),
                 static_cast<unsigned long long>(best[mi].probe_stable_spans));
    first_latency_row = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);

  double snapshot_ns = 0;
#if STAB_OBS_ENABLED
  snapshot_ns = windowed_snapshot_ns();
  std::printf("windowed snapshot (advance + percentile read): %.0f ns\n",
              snapshot_ns);
#endif
  std::fprintf(latency_json, "\n  ],\n  \"windowed_snapshot_ns\": %.0f\n}\n",
               snapshot_ns);
  std::fclose(latency_json);

  // Show the registry integration once (not timed): the table the chaos
  // campaign and EXPERIMENTS.md reference.
  if (obs_on && !smoke) run_case(kNodes, kPayload, 256, false, true);

  std::printf(
      "\nwrote BENCH_obs_overhead.json + BENCH_obs_latency.json "
      "(flavor STAB_OBS=%s)\n"
      "compare msgs/s across an ON and an OFF build of this binary for the "
      "acceptance ratios.\n",
      obs_on ? "ON" : "OFF");
  return 0;
}
