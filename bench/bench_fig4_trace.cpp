// E-F4: Fig 4 — Dropbox file size distribution over the 17-minute trace
// window (16:40:45 - 16:57:08, 2012-09-20; 3.87 GB total).
//
// The measurement trace is proprietary; this prints the statistics of the
// deterministic synthetic substitute (DESIGN.md §3) that drives Figs 5/6.
#include "backup/trace.hpp"
#include "bench_common.hpp"

using namespace stab;
using namespace stab::backup;
using namespace stab::bench;

int main() {
  print_header("bench_fig4_trace — synthetic Dropbox trace shape",
               "Fig 4 of the paper");

  TraceParams params;  // defaults = the paper's slice
  auto trace = generate_dropbox_trace(params);
  TraceStats stats = summarize(trace, 34);  // ~29 s buckets over 983 s

  std::printf("\ntrace: %zu sync requests over %.0f s, %.2f GB total\n",
              stats.num_records, to_sec(stats.duration),
              stats.total_bytes / 1e9);
  std::printf("largest file: %.1f MB, median file: %.0f KB\n\n",
              stats.max_bytes / 1e6, stats.median_bytes / 1e3);

  std::printf("file volume per ~29 s bucket (Fig 4's shape — three huge-file\n"
              "spikes over a bursty background):\n\n");
  uint64_t peak = 1;
  for (uint64_t b : stats.bucket_bytes) peak = std::max(peak, b);
  for (size_t i = 0; i < stats.bucket_bytes.size(); ++i) {
    double mb = stats.bucket_bytes[i] / 1e6;
    int bar = static_cast<int>(56.0 * stats.bucket_bytes[i] / peak);
    std::printf("  %6.1fs %8.1f MB |%.*s\n",
                to_sec(stats.duration) * i / stats.bucket_bytes.size(), mb,
                bar,
                "########################################################");
  }

  // Shape checks matching the paper's description.
  int spikes = 0;
  for (const auto& r : trace)
    if (r.size_bytes >= 100'000'000ULL) ++spikes;
  bool total_ok = stats.total_bytes == params.total_bytes;
  std::printf("\nchecks: total=3.87GB %s | %d huge (>100MB) files %s\n",
              total_ok ? "PASS" : "FAIL", spikes,
              spikes == params.num_huge_files ? "PASS" : "FAIL");
  std::printf("\n(8 KB packetization of this trace yields %llu messages; the\n"
              "paper reports 517,294 — same order, see bench_fig5.)\n",
              static_cast<unsigned long long>(
                  (stats.total_bytes + 8191) / 8192));
  return total_ok ? 0 : 1;
}
