// trace_timeline — offline join of a Tracer JSONL export into per-message
// timelines with critical-path attribution (docs/OBSERVABILITY.md §8).
//
//   trace_timeline [--timelines N] [--key KEY] [--shard N] [FILE]
//
// Reads trace JSONL (from FILE or stdin) and, per (origin, seq), joins the
// lifecycle spans into one timeline:
//
//   broadcast ─ transmit ─ deliver ─ ack_report ─ frontier_fire
//      t_b    ─   t_x    ─   t_d   ─    t_a     ─     t_f
//
// using the *last* record of each span kind (the slowest replica chain is
// what stability waits on) and the first frontier_fire whose frontier
// covers the sequence. Sharded traces (records carrying a "shard" field;
// DESIGN.md §9) join per (shard, origin, seq) — each shard is its own
// sequence space — and --shard N restricts the analysis to one shard. The send→stable interval then decomposes into four
// segments, and the segment that dominates is the message's critical path:
//
//   transmit = t_x - t_b   sequencing → last frame onto the wire
//   reorder  = t_d - t_x   wire + in-order wait at the slowest receiver
//   ack      = t_a - t_d   delivery → stability report flushed
//   eval     = t_f - t_a   report → frontier advance (aggregation + eval)
//
// Output: per-segment mean/p50/p99 over all joined messages, a critical-
// path attribution table (how many messages each segment dominated), the
// failover/back-pressure episode event counts, and --timelines N sample
// timelines. A trailing {"summary":"trace_dropped",...} line (appended by
// Tracer::export_jsonl when the buffer overflowed) is surfaced as a
// warning: joins over a truncated trace undercount long spans.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace {

// The exporter writes flat one-line objects with a fixed field order and no
// escaping except in "detail"; targeted substring extraction is enough and
// keeps the tool dependency-free.
bool find_i64(const std::string& line, const char* field, int64_t* out) {
  std::string pat = std::string("\"") + field + "\":";
  size_t p = line.find(pat);
  if (p == std::string::npos) return false;
  *out = std::strtoll(line.c_str() + p + pat.size(), nullptr, 10);
  return true;
}

bool find_str(const std::string& line, const char* field, std::string* out) {
  std::string pat = std::string("\"") + field + "\":\"";
  size_t p = line.find(pat);
  if (p == std::string::npos) return false;
  size_t start = p + pat.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

struct Timeline {
  int64_t broadcast = -1;
  int64_t last_transmit = -1;
  int64_t last_deliver = -1;
  int64_t last_ack = -1;
  int64_t first_covering_fire = -1;
};

struct SegStats {
  std::vector<int64_t> v;
  void add(int64_t x) { v.push_back(x); }
  int64_t pct(double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    size_t idx = std::min(v.size() - 1,
                          static_cast<size_t>(p / 100.0 * double(v.size())));
    return v[idx];
  }
  double mean() const {
    if (v.empty()) return 0;
    long double s = 0;
    for (int64_t x : v) s += static_cast<long double>(x);
    return double(s / static_cast<long double>(v.size()));
  }
};

const char* const kSegNames[4] = {"transmit", "reorder", "ack", "eval"};

}  // namespace

int main(int argc, char** argv) {
  const char* file = nullptr;
  std::string key_filter;
  size_t show_timelines = 0;
  int64_t shard_filter = INT64_MIN;  // INT64_MIN = all shards
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timelines") == 0 && i + 1 < argc) {
      show_timelines = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--key") == 0 && i + 1 < argc) {
      key_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      shard_filter = std::atoll(argv[++i]);
    } else {
      file = argv[i];
    }
  }
  std::ifstream fin;
  if (file != nullptr) {
    fin.open(file);
    if (!fin) {
      std::fprintf(stderr, "trace_timeline: cannot open %s\n", file);
      return 2;
    }
  }
  std::istream& in = file != nullptr ? fin : std::cin;

  // (shard, origin, seq) -> joined timeline (shard -1 for unsharded
  // records — each shard is an independent sequence space, so the shard is
  // part of the message identity). frontier_fire records carry the NEW
  // frontier in "seq": a fire covers every open span with seq' <= seq, so
  // they are applied after the full read (fires arrive in time order; the
  // first covering fire per message wins).
  using SpanKey = std::tuple<int64_t, int64_t, int64_t>;
  std::map<SpanKey, Timeline> spans;
  struct Fire {
    int64_t t, shard, origin, upto;
  };
  std::vector<Fire> fires;
  std::map<std::string, uint64_t> episode_counts;
  uint64_t records = 0, dropped = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("\"summary\":\"trace_dropped\"") != std::string::npos) {
      int64_t d = 0;
      find_i64(line, "dropped", &d);
      dropped += static_cast<uint64_t>(d);
      continue;
    }
    std::string ev;
    int64_t t = 0, origin = -1, seq = -1, shard = -1;
    if (!find_str(line, "ev", &ev) || !find_i64(line, "t_ns", &t)) continue;
    find_i64(line, "origin", &origin);
    find_i64(line, "seq", &seq);
    find_i64(line, "shard", &shard);
    if (shard_filter != INT64_MIN && shard != shard_filter) continue;
    ++records;
    if (ev == "broadcast") {
      spans[{shard, origin, seq}].broadcast = t;
    } else if (ev == "transmit") {
      Timeline& tl = spans[{shard, origin, seq}];
      tl.last_transmit = std::max(tl.last_transmit, t);
    } else if (ev == "deliver") {
      Timeline& tl = spans[{shard, origin, seq}];
      tl.last_deliver = std::max(tl.last_deliver, t);
    } else if (ev == "ack_report") {
      Timeline& tl = spans[{shard, origin, seq}];
      tl.last_ack = std::max(tl.last_ack, t);
    } else if (ev == "frontier_fire") {
      std::string key;
      find_str(line, "detail", &key);
      if (key_filter.empty() || key == key_filter)
        fires.push_back({t, shard, origin, seq});
    } else {
      ++episode_counts[ev];  // failover / back-pressure episode markers
    }
  }

  for (const Fire& f : fires) {
    // First covering fire per message: fires are read in record order,
    // which the tracer keeps append- (= time-) ordered. A fire only covers
    // spans of its own (shard, origin) stream.
    for (auto it = spans.lower_bound({f.shard, f.origin, INT64_MIN});
         it != spans.end() && std::get<0>(it->first) == f.shard &&
         std::get<1>(it->first) == f.origin && std::get<2>(it->first) <= f.upto;
         ++it)
      if (it->second.first_covering_fire < 0)
        it->second.first_covering_fire = f.t;
  }

  // A message joins when the send→stable *endpoints* exist (broadcast +
  // covering fire). Intermediate checkpoints depend on the tracer's
  // EventMask — the chaos campaign records only broadcast/deliver/fire —
  // so each gap between consecutive PRESENT checkpoints becomes one
  // segment, labeled with every canonical segment it spans (a trace
  // without ack_report reports "ack+eval" rather than joining nothing).
  std::map<std::string, SegStats> seg;
  std::map<std::string, uint64_t> dominant;
  SegStats total;
  uint64_t joined = 0, partial = 0;
  size_t printed = 0;
  for (const auto& [id, tl] : spans) {
    if (tl.broadcast < 0 || tl.first_covering_fire < 0) {
      ++partial;
      continue;
    }
    ++joined;
    const int64_t checkpoint[4] = {tl.last_transmit, tl.last_deliver,
                                   tl.last_ack, tl.first_covering_fire};
    std::string dom_label;
    int64_t dom_value = -1;
    int64_t prev_t = tl.broadcast;
    std::string pending;  // canonical names spanned since the last present
    std::string sample_line;
    for (int i = 0; i < 4; ++i) {
      if (!pending.empty()) pending += "+";
      pending += kSegNames[i];
      if (checkpoint[i] < 0) continue;  // masked out: fold into next gap
      const int64_t dt = std::max<int64_t>(checkpoint[i] - prev_t, 0);
      seg[pending].add(dt);
      if (dt > dom_value) {
        dom_value = dt;
        dom_label = pending;
      }
      if (printed < show_timelines) {
        sample_line += " +" + std::to_string(dt) + " " + pending;
      }
      prev_t = checkpoint[i];
      pending.clear();
    }
    ++dominant[dom_label];
    total.add(tl.first_covering_fire - tl.broadcast);
    if (printed < show_timelines) {
      ++printed;
      std::string shard_col;
      if (std::get<0>(id) >= 0)
        shard_col = "shard=" + std::to_string(std::get<0>(id)) + " ";
      std::printf("%sorigin=%lld seq=%lld  b=%lld%s  (crit: %s)\n",
                  shard_col.c_str(), static_cast<long long>(std::get<1>(id)),
                  static_cast<long long>(std::get<2>(id)),
                  static_cast<long long>(tl.broadcast), sample_line.c_str(),
                  dom_label.c_str());
    }
  }

  std::printf("records=%llu joined=%llu partial=%llu\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(joined),
              static_cast<unsigned long long>(partial));
  if (joined > 0) {
    std::printf("send_to_stable_ns: mean=%.0f p50=%lld p99=%lld\n",
                total.mean(), static_cast<long long>(total.pct(50)),
                static_cast<long long>(total.pct(99)));
    for (auto& [name, st] : seg)
      std::printf("  %-20s mean=%.0f p50=%lld p99=%lld dominant=%llu\n",
                  name.c_str(), st.mean(),
                  static_cast<long long>(st.pct(50)),
                  static_cast<long long>(st.pct(99)),
                  static_cast<unsigned long long>(dominant[name]));
  }
  for (const auto& [ev, n] : episode_counts)
    std::printf("episode %-14s %llu\n", ev.c_str(),
                static_cast<unsigned long long>(n));
  if (dropped > 0)
    std::printf("WARNING: tracer dropped %llu records; long spans are "
                "undercounted\n",
                static_cast<unsigned long long>(dropped));
  return 0;
}
