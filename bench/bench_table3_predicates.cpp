// E-T3: Table III — the six predicates used by the paper's experiments.
// Compiles each on the EC2 topology at the sender (node 1), prints the DSL
// source, the macro-expanded form, compile time, and whether the
// specializing fast path engaged.
#include "bench_common.hpp"
#include "backup/backup_service.hpp"
#include "control/stability_types.hpp"
#include "dsl/predicate.hpp"

using namespace stab;
using namespace stab::bench;

int main() {
  print_header("bench_table3_predicates — the experiment predicates",
               "Table III of the paper");

  Topology topo = ec2_topology();
  StabilityTypeRegistry types;
  dsl::PredicateContext ctx;
  ctx.topology = &topo;
  ctx.self = 0;  // node "1", the sender
  ctx.resolve_type = [&types](const std::string& name) {
    return std::optional<StabilityTypeId>(types.get_or_register(name));
  };

  auto preds = backup::BackupService::standard_predicates(topo, 0);
  const char* order[] = {"OneRegion",  "MajorityRegions", "AllRegions",
                         "OneWNode",   "MajorityWNodes",  "AllWNodes"};

  std::printf("\n%-16s %-62s\n", "Name", "Predicate (DSL source)");
  for (const char* name : order)
    std::printf("%-16s %-62s\n", name, preds[name].c_str());

  std::printf("\n%-16s %-34s %10s %6s\n", "Name",
              "expansion at node 1", "compile", "fast");
  for (const char* name : order) {
    auto p = dsl::Predicate::compile(preds[name], ctx);
    if (!p.is_ok()) {
      std::printf("%-16s COMPILE ERROR: %s\n", name, p.message().c_str());
      return 1;
    }
    std::printf("%-16s %-34s %8.1fus %6s\n", name,
                p.value().expanded().c_str(),
                p.value().compile_time().count() / 1e3,
                p.value().specialized() ? "yes" : "no");
  }
  std::printf(
      "\nAll six compiled; region predicates quantify over the three remote\n"
      "regions, node predicates over the seven remote WAN nodes.\n");
  return 0;
}
