// Shared fixtures for the paper-reproduction bench harnesses.
//
// Each bench binary regenerates one table or figure of the paper
// (DESIGN.md §2 maps experiment ids to binaries). They print paper-style
// rows to stdout; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "core/stabilizer.hpp"
#include "net/sim_transport.hpp"

namespace stab::bench {

/// A full Stabilizer cluster on the simulator, one instance per node.
struct StabCluster {
  explicit StabCluster(const Topology& topo, StabilizerOptions base = {}) {
    cluster = std::make_unique<SimCluster>(topo, sim);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      StabilizerOptions opts = base;
      opts.topology = topo;
      opts.self = n;
      nodes.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
    }
  }
  Stabilizer& node(NodeId n) { return *nodes.at(n); }

  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
};

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n  (reproduces %s)\n", experiment, paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace stab::bench
