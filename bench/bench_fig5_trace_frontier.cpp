// E-F5: Fig 5 — stability frontier latency per message, trace-driven.
//
// Replays the full synthetic Dropbox trace (Fig 4 / E-F4) through the
// Dropbox-like backup application on the emulated EC2 WAN: every sync
// request is split into <= 8 KB messages and streamed from node 1 to the
// seven mirrors; whenever an ACK arrives, the stability frontier of each of
// the six Table III predicates is recomputed, and we record the first time
// each message satisfies each predicate.
//
// Paper's observations to reproduce:
//   * three latency spikes, at the three huge files;
//   * weaker consistency levels are less impacted by the spikes;
//   * MajorityWNodes is more vulnerable to load spikes than MajorityRegions.
#include "backup/backup_service.hpp"
#include "backup/trace.hpp"
#include "bench_common.hpp"

using namespace stab;
using namespace stab::bench;

int main() {
  print_header("bench_fig5_trace_frontier — trace-driven frontier latency",
               "Fig 5 of the paper");

  Topology topo = ec2_topology();
  StabilizerOptions base;
  base.broadcast_acks = false;  // sender-side stability tracking (the
                                // paper's measurement point is the sender)
  base.ack_interval = millis(5);
  StabCluster cluster(topo, base);
  Stabilizer& sender = cluster.node(0);

  auto preds = backup::BackupService::standard_predicates(topo, 0);
  const std::vector<std::string> names = {"OneWNode",   "OneRegion",
                                          "MajorityRegions", "MajorityWNodes",
                                          "AllRegions", "AllWNodes"};
  for (const auto& name : names)
    if (!sender.register_predicate(name, preds[name])) return 1;

  auto trace = backup::generate_dropbox_trace();
  uint64_t total_messages = 0;
  for (const auto& r : trace) total_messages += (r.size_bytes + 8191) / 8192;
  std::printf("\nreplaying %zu sync requests -> %llu messages (paper: "
              "517,294)\n",
              trace.size(), static_cast<unsigned long long>(total_messages));

  // send_time[seq]; latency_ms[pred][seq]
  std::vector<double> send_time;
  send_time.reserve(total_messages);
  std::vector<std::vector<float>> latency_ms(
      names.size(), std::vector<float>(total_messages, -1.0f));

  for (size_t p = 0; p < names.size(); ++p) {
    auto last = std::make_shared<SeqNum>(kNoSeq);  // per-monitor cursor
    sender.monitor_stability_frontier(
        names[p], [&, p, last](SeqNum frontier, BytesView) {
          double now_ms = to_ms(cluster.sim.now());
          for (SeqNum s = *last + 1;
               s <= frontier && s < static_cast<SeqNum>(send_time.size()); ++s)
            latency_ms[p][s] = static_cast<float>(now_ms - send_time[s]);
          *last = frontier;
        });
  }

  for (const auto& rec : trace) {
    cluster.sim.schedule_at(rec.at, [&, size = rec.size_bytes] {
      uint64_t chunks = (size + 8191) / 8192;
      for (uint64_t c = 0; c < chunks; ++c) {
        uint64_t len = std::min<uint64_t>(8192, size - c * 8192);
        send_time.push_back(to_ms(cluster.sim.now()));
        sender.send({}, len);
      }
    });
  }
  cluster.sim.run();
  std::printf("simulation done: %llu events, virtual time %.0f s\n\n",
              static_cast<unsigned long long>(cluster.sim.events_processed()),
              to_sec(cluster.sim.now()));

  // --- Fig 5: latency vs message sequence number, bucketed ------------------
  const size_t buckets = 26;
  size_t per_bucket = send_time.size() / buckets + 1;
  std::printf("mean stability-frontier latency (seconds) per message-range "
              "bucket:\n\n%10s", "msg range");
  for (const auto& n : names) std::printf(" %9.9s", n.c_str());
  std::printf("\n");
  std::vector<Series> overall(names.size());
  for (size_t b = 0; b < buckets; ++b) {
    size_t lo = b * per_bucket;
    size_t hi = std::min(send_time.size(), lo + per_bucket);
    if (lo >= hi) break;
    std::printf("%10zu", lo);
    for (size_t p = 0; p < names.size(); ++p) {
      Series s;
      for (size_t i = lo; i < hi; ++i)
        if (latency_ms[p][i] >= 0) {
          s.add(latency_ms[p][i] / 1000.0);
          overall[p].add(latency_ms[p][i] / 1000.0);
        }
      std::printf(" %9.2f", s.mean());
    }
    std::printf("\n");
  }

  std::printf("\noverall (s):%-6s", "");
  for (size_t p = 0; p < names.size(); ++p) std::printf(" %9.9s", names[p].c_str());
  std::printf("\n%16s", "mean");
  for (auto& s : overall) std::printf(" %9.2f", s.mean());
  std::printf("\n%16s", "p99");
  for (auto& s : overall) std::printf(" %9.2f", s.percentile(99));
  std::printf("\n%16s", "max");
  for (auto& s : overall) std::printf(" %9.2f", s.max());

  // --- shape checks -----------------------------------------------------------
  auto mean_of = [&](const char* name) {
    for (size_t p = 0; p < names.size(); ++p)
      if (names[p] == name) return overall[p].mean();
    return -1.0;
  };
  bool order_nodes = mean_of("OneWNode") <= mean_of("MajorityWNodes") &&
                     mean_of("MajorityWNodes") <= mean_of("AllWNodes");
  bool order_regions = mean_of("OneRegion") <= mean_of("MajorityRegions") &&
                       mean_of("MajorityRegions") <= mean_of("AllRegions");
  bool majority_gap = mean_of("MajorityRegions") < mean_of("MajorityWNodes");
  std::printf("\n\nshape checks:\n");
  std::printf("  One <= Majority <= All (nodes):   %s\n",
              order_nodes ? "PASS" : "FAIL");
  std::printf("  One <= Majority <= All (regions): %s\n",
              order_regions ? "PASS" : "FAIL");
  std::printf("  MajorityWNodes more spike-vulnerable than MajorityRegions: "
              "%s\n",
              majority_gap ? "PASS" : "FAIL");
  return (order_nodes && order_regions && majority_gap) ? 0 : 1;
}
