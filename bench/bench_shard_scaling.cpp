// Sharded multi-primary scale-out bench (ISSUE 9 tentpole, DESIGN.md §9).
//
// Eight producer threads drive the coalesced data path of one node's facade
// at 1/2/4/8 keyspace shards, with a mirror node acking every stream over a
// 2 ms WAN-latency link. The workload is FIXED (same total messages, same
// payload, same producers) — only the shard count changes, so the curve
// isolates what sharding buys: a single sequencer's throughput is capped by
// its per-stream flow-control window over the round trip (send_window
// messages in flight per go-back-N stream, refilled as the mirror's acks
// return — the bounded reorder/retransmit buffer every real mirror
// imposes), and every producer's traffic funnels through that ONE window.
// Producer p routes to shard p mod S, so S shards sequence S independent
// streams with S independent windows: aggregate in-flight capacity scales
// with the shard count while the per-message CPU work stays identical.
//
// The clock is end-to-end per config: it stops only when every shard's
// "stable" frontier (MIN($ALLWNODES), both nodes acked) covers that shard's
// last issued seq — ingestion, coalesced window flush, delivery, ack
// return, and frontier evaluation all inside the timed window. The mirror
// checks dense per-shard FIFO delivery throughout, so a config cannot win
// by dropping or reordering.
//
// Writes BENCH_shard_scaling.json (committed artifact; EXPERIMENTS.md
// "Shard scaling"). Acceptance: >= 3x throughput at 4 shards vs 1 (full
// mode). --smoke runs 1 vs 2 shards with a small workload and enforces a
// 1.5x floor (the scripts/ci.sh gate).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "config/topology.hpp"
#include "net/inproc_transport.hpp"
#include "shard/sharded_stabilizer.hpp"

namespace stab::bench {
namespace {

using shard::ShardedOptions;
using shard::ShardedStabilizer;
using shard::ShardId;

constexpr size_t kProducers = 8;
constexpr size_t kPayloadBytes = 64;

struct CaseResult {
  double wall_ms = 0;
  double msgs_per_sec = 0;
  uint64_t frames_coalesced = 0;
};

constexpr size_t kSendWindow = 64;   // per-stream in-flight cap (flow control)
constexpr double kLinkLatencyMs = 2; // one-way WAN latency on the InProc link

/// One scale-out deployment: a 2-node InProc cluster per shard with the
/// WAN-latency link, so each shard's stream pays a real window-refill round
/// trip and aggregate in-flight capacity is shards x send_window.
CaseResult run_case(uint32_t num_shards, size_t total_msgs) {
  Topology topo;
  topo.add_node("n0", "az0");
  topo.add_node("n1", "az1");
  LinkSpec link;
  link.latency = from_ms(kLinkLatencyMs);
  topo.set_link(0, 1, link);
  topo.set_link(1, 0, link);

  std::vector<std::unique_ptr<InProcCluster>> clusters;
  std::vector<Transport*> t0, t1;
  for (uint32_t s = 0; s < num_shards; ++s) {
    clusters.push_back(std::make_unique<InProcCluster>(2, &topo));
    t0.push_back(&clusters.back()->transport(0));
    t1.push_back(&clusters.back()->transport(1));
  }

  auto make_opts = [&](NodeId self) {
    ShardedOptions opts;
    opts.base.topology = topo;
    opts.base.self = self;
    opts.base.ack_interval = millis(1);
    opts.base.coalesce_max_frames = 16;
    opts.base.send_window = kSendWindow;
    opts.num_shards = num_shards;
    return opts;
  };
  ShardedStabilizer origin(make_opts(0), t0);
  ShardedStabilizer mirror(make_opts(1), t1);

  // Dense per-shard FIFO check at the mirror: a shard's deliveries must be
  // exactly 0,1,2,... in order. (Handlers of different shards run
  // concurrently; each counter is only ever advanced by its own shard.)
  std::vector<std::unique_ptr<std::atomic<int64_t>>> next_seq;
  std::atomic<bool> fifo_broken{false};
  for (uint32_t s = 0; s < num_shards; ++s)
    next_seq.push_back(std::make_unique<std::atomic<int64_t>>(0));
  mirror.set_delivery_handler(
      [&](ShardId s, NodeId, SeqNum seq, BytesView, uint64_t) {
        if (seq != next_seq[s]->fetch_add(1, std::memory_order_relaxed))
          fifo_broken.store(true, std::memory_order_relaxed);
      });

  if (!origin.register_predicate("stable", "MIN($ALLWNODES)").is_ok()) {
    std::fprintf(stderr, "register_predicate failed\n");
    std::exit(1);
  }

  // Pre-probe one routing key per producer that lands on shard p mod S, so
  // the timed loop routes by key (the real API) but the placement is the
  // partition the headline describes.
  std::vector<std::string> keys(kProducers);
  for (size_t p = 0; p < kProducers; ++p)
    for (int i = 0;; ++i) {
      std::string k = "key/" + std::to_string(i);
      if (origin.shard_of(std::string_view(k)) == p % num_shards) {
        keys[p] = std::move(k);
        break;
      }
    }

  const Bytes payload(kPayloadBytes, 0xAB);
  const size_t per_producer = total_msgs / kProducers;
  std::vector<std::atomic<int64_t>> last_seq(num_shards);
  for (auto& l : last_seq) l.store(kNoSeq, std::memory_order_relaxed);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < per_producer; ++i) {
        const auto ss = origin.send(keys[p], payload);
        // Producers sharing a shard race on seq order; track the max.
        int64_t prev = last_seq[ss.shard].load(std::memory_order_relaxed);
        while (prev < ss.seq && !last_seq[ss.shard].compare_exchange_weak(
                                    prev, ss.seq, std::memory_order_relaxed)) {
        }
      }
    });
  for (auto& t : producers) t.join();

  // End-to-end: every shard's frontier must absorb everything it issued.
  auto deadline = start + std::chrono::seconds(120);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const SeqNum want = last_seq[s].load(std::memory_order_relaxed);
    while (origin.shard(s).get_stability_frontier("stable") < want) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "TIMEOUT: shard %u frontier stuck below %lld\n",
                     s, static_cast<long long>(want));
        std::exit(1);
      }
      std::this_thread::yield();
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  if (fifo_broken.load()) {
    std::fprintf(stderr, "FIFO VIOLATION at %u shards\n", num_shards);
    std::exit(1);
  }
  // Completeness: the mirror delivered exactly what every shard issued.
  uint64_t delivered = 0;
  for (uint32_t s = 0; s < num_shards; ++s)
    delivered += static_cast<uint64_t>(next_seq[s]->load());
  if (delivered != total_msgs) {
    std::fprintf(stderr, "DELIVERY SHORTFALL: %llu != %zu\n",
                 static_cast<unsigned long long>(delivered), total_msgs);
    std::exit(1);
  }

  CaseResult r;
  r.wall_ms = static_cast<double>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      elapsed)
                      .count()) /
              1000.0;
  r.msgs_per_sec = static_cast<double>(total_msgs) / (r.wall_ms / 1000.0);
  r.frames_coalesced = origin.stats().frames_coalesced;
  return r;
}

int run(bool smoke) {
  const std::vector<uint32_t> shard_counts =
      smoke ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4, 8};
  const size_t total_msgs = smoke ? 16000 : 96000;
  const double floor = smoke ? 1.5 : 3.0;
  const uint32_t floor_at = smoke ? 2 : 4;

  std::printf(
      "Shard scaling: %zu producers, %zu msgs x %zu B, coalesced data path\n"
      "%7s | %10s %14s %9s %12s\n",
      kProducers, total_msgs, kPayloadBytes, "shards", "wall ms",
      "msgs/sec", "speedup", "coalesced");

  std::FILE* json = std::fopen("BENCH_shard_scaling.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_shard_scaling.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"rows\": [\n");

  double base_rate = 0, floor_speedup = 0;
  bool first = true;
  for (uint32_t s : shard_counts) {
    const CaseResult r = run_case(s, total_msgs);
    if (s == 1) base_rate = r.msgs_per_sec;
    const double speedup = base_rate > 0 ? r.msgs_per_sec / base_rate : 0;
    if (s == floor_at) floor_speedup = speedup;
    std::printf("%7u | %10.1f %14.0f %8.2fx %12llu\n", s, r.wall_ms,
                r.msgs_per_sec, speedup,
                static_cast<unsigned long long>(r.frames_coalesced));
    std::fprintf(json,
                 "%s    {\"shards\": %u, \"producers\": %zu, \"msgs\": %zu, "
                 "\"payload_bytes\": %zu, \"wall_ms\": %.1f, "
                 "\"msgs_per_sec\": %.0f, \"speedup_vs_1shard\": %.3f, "
                 "\"frames_coalesced\": %llu}",
                 first ? "" : ",\n", s, kProducers, total_msgs, kPayloadBytes,
                 r.wall_ms, r.msgs_per_sec, speedup,
                 static_cast<unsigned long long>(r.frames_coalesced));
    first = false;
  }

  std::printf("\nspeedup at %u shards: %.2fx (acceptance floor: %.1fx)\n",
              floor_at, floor_speedup, floor);
  std::fprintf(json,
               "\n  ],\n  \"speedup_at_%u_shards\": %.3f,\n"
               "  \"acceptance_floor\": %.1f,\n  \"smoke\": %s\n}\n",
               floor_at, floor_speedup, floor, smoke ? "true" : "false");
  std::fclose(json);

  if (floor_speedup < floor) {
    std::fprintf(stderr, "FAIL: speedup at %u shards %.2fx < %.1fx\n",
                 floor_at, floor_speedup, floor);
    return 1;
  }
  std::printf("wrote BENCH_shard_scaling.json\n");
  return 0;
}

}  // namespace
}  // namespace stab::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  return stab::bench::run(smoke);
}
