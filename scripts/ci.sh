#!/usr/bin/env bash
# Tier-1 CI: plain build + full ctest, then an AddressSanitizer pass over the
# control-plane and core suites (the two that exercise the indexed dispatch /
# batched ack hot path and its re-entrant callback surface).
#
# Usage: scripts/ci.sh [extra cmake args...]
# Env:   STAB_CI_SANITIZER=address|thread|undefined  (default: address)
#        STAB_CI_SKIP_SANITIZER=1                    skip the sanitized pass
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SAN="${STAB_CI_SANITIZER:-address}"

echo "==> tier-1: configure + build (build/)"
cmake -B "$ROOT/build" -S "$ROOT" "$@"
cmake --build "$ROOT/build" -j

echo "==> tier-1: ctest"
ctest --test-dir "$ROOT/build" --output-on-failure

if [[ "${STAB_CI_SKIP_SANITIZER:-0}" == "1" ]]; then
  echo "==> sanitizer pass skipped (STAB_CI_SKIP_SANITIZER=1)"
  exit 0
fi

SAN_DIR="$ROOT/build-$SAN"
echo "==> $SAN sanitizer: configure + build (build-$SAN/)"
cmake -B "$SAN_DIR" -S "$ROOT" -DSTAB_SANITIZE="$SAN" "$@"
cmake --build "$SAN_DIR" -j --target control_test core_test

echo "==> $SAN sanitizer: control_test + core_test"
"$SAN_DIR/tests/control_test"
"$SAN_DIR/tests/core_test"

echo "==> CI OK"
