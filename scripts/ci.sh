#!/usr/bin/env bash
# Tier-1 CI: plain build + full ctest, bench smokes (data-plane fan-out,
# the control-plane dispatch + MT producer curve, and the sharded scale-out
# throughput floor), a chaos property sweep
# under fresh random seeds, then sanitizer passes: one configurable pass over
# the control-plane/core suites (the indexed dispatch / batched ack hot path,
# its re-entrant callback surface, and the lock-free pipeline's MT suite)
# plus ASan, TSan, and UBSan passes over the fault-handling suites
# (recovery_test + chaos_test + failover_test — the crash-restart / RESUME
# machinery and the primary-failover election/fencing path, with
# pipeline-enabled campaigns). The TSan leg additionally runs core_mt_test
# and failover-adjacent MT suites unconditionally.
#
# Usage: scripts/ci.sh [extra cmake args...]
# Env:   STAB_CI_SANITIZER=address|thread|undefined  (default: address)
#        STAB_CI_SKIP_SANITIZER=1                    skip all sanitized passes
#        STAB_CI_CHAOS_SEEDS=N                       random seeds (default: 8)
#        STAB_CI_FAILOVER_SEEDS=N                    random seeds (default: 3)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SAN="${STAB_CI_SANITIZER:-address}"

echo "==> docs link check"
"$ROOT/scripts/check_docs_links.sh"

echo "==> metric-name docs check"
# Every complete-literal counter/gauge/histogram name registered in src/
# must appear in docs/OBSERVABILITY.md's catalog.
"$ROOT/scripts/check_metrics_docs.sh"

echo "==> tier-1: configure + build (build/)"
cmake -B "$ROOT/build" -S "$ROOT" "$@"
cmake --build "$ROOT/build" -j

echo "==> tier-1: ctest"
ctest --test-dir "$ROOT/build" --output-on-failure

echo "==> data-plane hot path bench (smoke)"
# Runs in build/ so the smoke JSON does not clobber the committed full-mode
# BENCH_data_hotpath.json at the repo root.
(cd "$ROOT/build" && bench/bench_data_hotpath --smoke)

echo "==> control-plane hot path bench (smoke: dispatch + MT producer curve)"
# Same convention: the committed BENCH_control_mt.json at the repo root is
# full-mode only; the smoke pass exercises the digest-equality assertions
# (indexed-vs-legacy, pipelined-vs-locked) without enforcing timing floors.
(cd "$ROOT/build" && bench/bench_control_hotpath --smoke)

echo "==> shard scale-out bench (smoke: 1 vs 2 shards, >=1.5x floor)"
# The committed BENCH_shard_scaling.json at the repo root is full-mode only
# (1/2/4/8 shards, >=3x floor at 4); the smoke pass runs the same end-to-end
# coalesced-path workload at 1 and 2 shards and exits nonzero below 1.5x.
(cd "$ROOT/build" && bench/bench_shard_scaling --smoke)

echo "==> stability propagation bench (smoke: 16-node fleet, >=5x bytes floor)"
# The committed BENCH_stability_propagation.json at the repo root is
# full-mode only (64 nodes, >=10x floor); the smoke pass runs the same
# immediate/deferred/deferred+agg comparison on a 4x4 fleet and exits
# nonzero below 5x bytes reduction or above the p99 frontier-lag bound.
(cd "$ROOT/build" && bench/bench_stability_propagation --smoke)

echo "==> metrics endpoint smoke (live TCP cluster + 2 scrapes mid-traffic)"
# Stand up the 3-node loopback demo with a kernel-assigned port, scrape the
# Prometheus view twice while traffic is flowing (asserting well-formed
# exposition and monotone counters between scrapes), then require the demo
# itself to exit 0 — i.e. the scraped cluster still reached "everywhere"
# stability.
EXPORT_LOG="$(mktemp)"
# Randomized cluster base port (the scrape port itself is always
# kernel-assigned and read back from METRICS_PORT).
BASE_PORT=$(( 24000 + RANDOM % 20000 ))
"$ROOT/build/examples/metrics_export" "$BASE_PORT" 6 >"$EXPORT_LOG" 2>&1 &
EXPORT_PID=$!
PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/^METRICS_PORT=//p' "$EXPORT_LOG" | head -n1)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "==> metrics_export never printed METRICS_PORT"
  cat "$EXPORT_LOG"; kill "$EXPORT_PID" 2>/dev/null || true
  rm -f "$EXPORT_LOG"; exit 1
fi
SCRAPE1="$("$ROOT/build/tools/stab_metrics_scrape" --retries 20 "$PORT")"
sleep 1
SCRAPE2="$("$ROOT/build/tools/stab_metrics_scrape" --retries 20 "$PORT")"
"$ROOT/build/tools/stab_metrics_scrape" --retries 20 --jsonl "$PORT" \
  | grep -q '"type":"windowed_histogram"' \
  || { echo "==> JSONL scrape missing windowed histograms"; exit 1; }
for S in "$SCRAPE1" "$SCRAPE2"; do
  grep -q '^# TYPE stab_' <<<"$S" \
    || { echo "==> scrape is not Prometheus exposition"; exit 1; }
  grep -q '^stab_node0_core_messages_sent ' <<<"$S" \
    || { echo "==> scrape missing node counters"; exit 1; }
done
SENT1="$(sed -n 's/^stab_node0_core_messages_sent \([0-9]*\)$/\1/p' <<<"$SCRAPE1")"
SENT2="$(sed -n 's/^stab_node0_core_messages_sent \([0-9]*\)$/\1/p' <<<"$SCRAPE2")"
if (( SENT2 < SENT1 )) || (( SENT2 == 0 )); then
  echo "==> counters not monotone across scrapes ($SENT1 -> $SENT2)"; exit 1
fi
if ! wait "$EXPORT_PID"; then
  echo "==> metrics_export exited nonzero (cluster failed to stabilize)"
  cat "$EXPORT_LOG"; rm -f "$EXPORT_LOG"; exit 1
fi
rm -f "$EXPORT_LOG"
echo "    scraped mid-traffic: messages_sent $SENT1 -> $SENT2, demo exit 0"

# Compiled-out flavor: the obs macros must vanish cleanly — build the core
# with -DSTAB_OBS=OFF and run the suites that pin the disabled contract
# (obs_disabled_test) and the widest consumer of registry-backed stats
# (core_test, whose stats assertions are flavor-gated).
echo "==> STAB_OBS=OFF flavor: configure + build (build-noobs/)"
cmake -B "$ROOT/build-noobs" -S "$ROOT" -DSTAB_OBS=OFF "$@"
cmake --build "$ROOT/build-noobs" -j --target obs_disabled_test core_test
echo "==> STAB_OBS=OFF flavor: obs_disabled_test + core_test"
"$ROOT/build-noobs/tests/obs_disabled_test"
"$ROOT/build-noobs/tests/core_test"

NUM_SEEDS="${STAB_CI_CHAOS_SEEDS:-8}"
SEEDS=""
for ((i = 0; i < NUM_SEEDS; ++i)); do
  SEEDS+="${SEEDS:+,}$(( (RANDOM * 32768 + RANDOM) * 32768 + RANDOM + 1 ))"
done
echo "==> chaos property sweep: STAB_CHAOS_SEEDS=$SEEDS"
CHAOS_LOG="$(mktemp)"
if ! STAB_CHAOS_SEEDS="$SEEDS" "$ROOT/build/tests/chaos_test" \
    --gtest_filter='ChaosProperty.*' 2>&1 | tee "$CHAOS_LOG"; then
  echo "==> chaos sweep FAILED"
  grep "CHAOS REPLAY SEED" "$CHAOS_LOG" || true
  rm -f "$CHAOS_LOG"
  exit 1
fi
# A replay-seed marker means a campaign failed even if the process managed
# to exit zero: fail the script on any occurrence.
if grep -q "CHAOS REPLAY SEED" "$CHAOS_LOG"; then
  echo "==> chaos sweep printed a replay seed; failing"
  rm -f "$CHAOS_LOG"
  exit 1
fi
rm -f "$CHAOS_LOG"

# Same workflow for the primary-failover kill campaigns: fresh random seeds
# every run, replay any failure with STAB_FAILOVER_SEEDS=<seed>.
NUM_FSEEDS="${STAB_CI_FAILOVER_SEEDS:-3}"
FSEEDS=""
for ((i = 0; i < NUM_FSEEDS; ++i)); do
  FSEEDS+="${FSEEDS:+,}$(( (RANDOM * 32768 + RANDOM) * 32768 + RANDOM + 1 ))"
done
echo "==> failover kill-campaign sweep: STAB_FAILOVER_SEEDS=$FSEEDS"
FAILOVER_LOG="$(mktemp)"
if ! STAB_FAILOVER_SEEDS="$FSEEDS" "$ROOT/build/tests/failover_test" \
    --gtest_filter='FailoverProperty.*' 2>&1 | tee "$FAILOVER_LOG"; then
  echo "==> failover sweep FAILED"
  grep "FAILOVER REPLAY SEED" "$FAILOVER_LOG" || true
  rm -f "$FAILOVER_LOG"
  exit 1
fi
if grep -q "FAILOVER REPLAY SEED" "$FAILOVER_LOG"; then
  echo "==> failover sweep printed a replay seed; failing"
  rm -f "$FAILOVER_LOG"
  exit 1
fi
rm -f "$FAILOVER_LOG"

if [[ "${STAB_CI_SKIP_SANITIZER:-0}" == "1" ]]; then
  echo "==> sanitizer passes skipped (STAB_CI_SKIP_SANITIZER=1)"
  exit 0
fi

SAN_DIR="$ROOT/build-$SAN"
echo "==> $SAN sanitizer: configure + build (build-$SAN/)"
cmake -B "$SAN_DIR" -S "$ROOT" -DSTAB_SANITIZE="$SAN" "$@"
cmake --build "$SAN_DIR" -j \
  --target control_test core_test core_mt_test obs_test shard_test

echo "==> $SAN sanitizer: control_test + core_test + core_mt_test" \
     "+ obs_test + shard_test"
"$SAN_DIR/tests/control_test"
"$SAN_DIR/tests/core_test"
"$SAN_DIR/tests/core_mt_test"
"$SAN_DIR/tests/obs_test"
"$SAN_DIR/tests/shard_test"

# Fault-handling suites under the full sanitizer matrix — ASan, TSan, and
# UBSan as real legs: the crash-restart path destroys and rebuilds
# Stabilizers mid-simulation (lifetime hazards), the TCP reconnect path
# crosses the IO thread (ordering hazards), and the failover codecs +
# epoch/cursor arithmetic exercise shifts, casts, and enum round-trips on
# hostile inputs (UB hazards).
for FSAN in address thread undefined; do
  FSAN_DIR="$ROOT/build-$FSAN"
  echo "==> $FSAN sanitizer: recovery_test + chaos_test + failover_test (build-$FSAN/)"
  cmake -B "$FSAN_DIR" -S "$ROOT" -DSTAB_SANITIZE="$FSAN" "$@"
  cmake --build "$FSAN_DIR" -j --target recovery_test chaos_test failover_test
  "$FSAN_DIR/tests/recovery_test"
  "$FSAN_DIR/tests/chaos_test"
  "$FSAN_DIR/tests/failover_test"
  if [[ "$FSAN" == "thread" ]]; then
    # The refcounted fan-out hands one buffer to concurrent receiver threads
    # (InProc) and to the TCP IO thread via scatter-gather; net_test under
    # TSan guards the shared-frame lifetime and ordering. obs_test under
    # TSan guards the registry's relaxed-atomic counters and the tracer's
    # mutexed append (its multithreaded hammer tests). core_mt_test under
    # TSan guards the lock-free control-plane pipeline (SPSC rings, CAS-max
    # ack cells, epoch-snapshot frontier reads) under genuinely concurrent
    # facade use — it runs here unconditionally even when STAB_CI_SANITIZER
    # selects a different flavor for the configurable pass above. The
    # pipeline-enabled chaos campaign (ChaosCampaign.PipelinedAgreesWith-
    # LockedPostHeal + the odd sweep seeds) and the sharded campaigns
    # (ShardedChaos.*: per-shard failover domains + per-shard pipelined-vs-
    # locked digest equality, DESIGN.md §9) already ran as part of
    # chaos_test just above.
    echo "==> $FSAN sanitizer: net_test (shared fan-out) + obs_test" \
         "+ core_mt_test (pipeline)"
    cmake --build "$FSAN_DIR" -j --target net_test obs_test core_mt_test
    "$FSAN_DIR/tests/net_test"
    "$FSAN_DIR/tests/obs_test"
    "$FSAN_DIR/tests/core_mt_test"
  fi
done

echo "==> CI OK"
