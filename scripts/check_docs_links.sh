#!/usr/bin/env bash
# Docs link check: every relative markdown link in the tracked *.md files
# must resolve to an existing file (anchors are stripped; external
# http(s)/mailto links are skipped). Exits nonzero listing dead links.
#
# Usage: scripts/check_docs_links.sh [file.md ...]   (default: all tracked)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  # Tracked markdown anywhere in the repo; fall back to a find when the
  # tree is not a git checkout (e.g. an exported tarball).
  if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
    mapfile -t FILES < <(git ls-files '*.md')
  else
    mapfile -t FILES < <(find . -name '*.md' -not -path './build*' | sed 's|^\./||')
  fi
fi

FAIL=0
for f in "${FILES[@]}"; do
  [[ -f "$f" ]] || { echo "MISSING FILE: $f"; FAIL=1; continue; }
  dir="$(dirname "$f")"
  # Inline markdown links: [text](target). Images share the syntax and are
  # checked the same way. Reference-style links are not used in this repo.
  # Fenced code blocks are stripped first — C++ lambdas (`[](SeqNum)`)
  # would otherwise read as links.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path="${target%%#*}"             # strip the anchor
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "DEAD LINK: $f -> $target"
      FAIL=1
    fi
  done < <(awk '/^ *```/ { fenced = !fenced; next } !fenced' "$f" \
             | grep -oE '\]\(([^)]+)\)' | sed -E 's/^\]\(//; s/\)$//' || true)
done

if [[ "$FAIL" != 0 ]]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK (${#FILES[@]} files)"
