#!/usr/bin/env bash
# Metric-name doc check: every metric registered under a complete string
# literal anywhere in src/ — counter("..."), gauge("..."), histogram("...")
# — must appear by name in docs/OBSERVABILITY.md. Dynamically composed
# names (prefix + origin / type-key concatenations) are intentionally out
# of scope: they never form a complete literal call, and the catalog
# documents their patterns (`probe.send_to_stable.<key>`, …) instead.
# Exits nonzero listing undocumented metrics.
#
# Usage: scripts/check_metrics_docs.sh
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

DOC="docs/OBSERVABILITY.md"
[[ -f "$DOC" ]] || { echo "MISSING: $DOC"; exit 1; }

FAIL=0
COUNT=0
while IFS= read -r name; do
  COUNT=$((COUNT + 1))
  if ! grep -qF "$name" "$DOC"; then
    echo "UNDOCUMENTED METRIC: $name (registered in src/, absent from $DOC)"
    FAIL=1
  fi
done < <(grep -rhoE '(counter|gauge|histogram)\("[^"]+"\)' src/ \
           | sed -E 's/^(counter|gauge|histogram)\("//; s/"\)$//' \
           | sort -u)

if [[ "$COUNT" == 0 ]]; then
  echo "metric extraction found nothing — check the pattern"
  exit 1
fi
if [[ "$FAIL" != 0 ]]; then
  echo "metrics doc check FAILED"
  exit 1
fi
echo "metrics doc check OK ($COUNT metric names)"
