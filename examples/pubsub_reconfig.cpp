// Pub/sub with dynamic predicate reconfiguration (paper §V-B + §VI-D) on
// the CloudLab topology: as the subscriber on the slowest site comes and
// goes, the publisher's reliable-broadcast predicate is swapped at runtime
// and the user-visible latency follows.
//
// Build & run:  ./build/examples/pubsub_reconfig
#include <cstdio>

#include "common/stats.hpp"
#include "net/sim_transport.hpp"
#include "pubsub/broker.hpp"

using namespace stab;

int main() {
  Topology topo = cloudlab_topology();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);

  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<pubsub::Broker>> brokers;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    stabs.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    brokers.push_back(std::make_unique<pubsub::Broker>(*stabs.back()));
  }
  pubsub::Broker& publisher = *brokers[cloudlab::kUtah1];
  pubsub::Broker& wi = *brokers[cloudlab::kWisconsin];
  pubsub::Broker& ma = *brokers[cloudlab::kMassachusetts];
  pubsub::Broker& clem = *brokers[cloudlab::kClemson];  // slowest site

  std::printf("pubsub_reconfig: publisher at Utah1; subscribers at\n"
              "Wisconsin (35.6ms RTT), Massachusetts (48.1ms), and —\n"
              "intermittently — Clemson (50.9ms, the slowest site)\n\n");

  wi.subscribe([](NodeId, SeqNum, BytesView) {});
  ma.subscribe([](NodeId, SeqNum, BytesView) {});
  sim.run();  // propagate SUBs

  auto publish_and_measure = [&](const char* phase) {
    Series lat;
    for (int i = 0; i < 20; ++i) {
      TimePoint start = sim.now();
      SeqNum seq = publisher.publish(Bytes(8 * 1024, 0x42));
      publisher.wait_reliable(
          seq, [&, start](SeqNum) { lat.add(to_ms(sim.now() - start)); });
      sim.run_until(sim.now() + millis(12));  // 80 msg/s pace (approx)
    }
    sim.run();
    std::printf("  %-28s predicate %-14s mean latency %6.2f ms\n", phase,
                publisher.current_predicate_source().c_str(), lat.mean());
  };

  publish_and_measure("without Clemson:");

  uint64_t clem_sub = clem.subscribe([](NodeId, SeqNum, BytesView) {});
  sim.run();
  publish_and_measure("Clemson subscribes:");

  clem.unsubscribe(clem_sub);
  sim.run();
  publish_and_measure("Clemson unsubscribes:");

  std::printf(
      "\nThe predicate is rebuilt via change_predicate() at each\n"
      "subscription change; no publisher ever waits for a site that has no\n"
      "subscribers (the Fig 8 experiment mechanizes exactly this).\n");
  return 0;
}
