// WAN K/V store on the paper's emulated EC2 topology (Fig 2 / Table I):
// primary-owned key pools, read-only mirrors, stability-gated reads, and a
// custom application-defined stability level ("verified").
//
// Build & run:  ./build/examples/geo_kv_store
#include <cstdio>

#include "kv/wan_kv.hpp"
#include "net/sim_transport.hpp"

using namespace stab;

int main() {
  Topology topo = ec2_topology();  // 8 nodes, 4 AWS regions
  sim::Simulator sim;
  SimCluster cluster(topo, sim);

  // Pools: keys are "<node-name>/<key>", owned by that node.
  auto owner = [&topo](const std::string& key) {
    auto slash = key.find('/');
    auto id = topo.find_node(key.substr(0, slash));
    return id ? *id : kInvalidNode;
  };

  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<store::LocalStore>> stores;
  std::vector<std::unique_ptr<kv::WanKV>> kvs;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    stabs.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    stores.push_back(std::make_unique<store::LocalStore>());
    kvs.push_back(
        std::make_unique<kv::WanKV>(*stabs.back(), *stores.back(), owner));
  }
  kv::WanKV& nc1 = *kvs[0];  // North California node "1", the writer

  // Region-aware durability: a copy in every remote region before the data
  // is considered safe — inexpressible in fixed-choice systems (§IV-A).
  nc1.register_predicate(
      "all_regions",
      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))");
  // Application-defined level: mirrors "verify" records after applying them.
  nc1.register_predicate("verified_majority",
                         "KTH_MAX(4,($ALLWNODES-$MYWNODE).verified)");

  std::printf("geo_kv_store: writing from North California (node 1)\n\n");
  auto put = nc1.put("1/user:42", to_bytes("{\"name\":\"Ada\"}"));
  if (!put.is_ok()) {
    std::printf("put failed: %s\n", put.message().c_str());
    return 1;
  }
  std::printf("  put accepted locally: version %llu, seq %lld\n",
              static_cast<unsigned long long>(put.value().version),
              static_cast<long long>(put.value().last_seq));

  // A mirror is not readable under the strong predicate until every remote
  // region holds a copy.
  auto gated = nc1.get_stable("1/user:42", "all_regions");
  std::printf("  get_stable before replication: %s\n",
              gated ? "value (unexpected!)" : "not yet stable — blocked");

  // Mirrors verify records after applying them (e.g. checksum, signature)
  // and report the custom stability level.
  for (NodeId n = 1; n < topo.num_nodes(); ++n) {
    Stabilizer& s = *stabs[n];
    kvs[n]->set_post_apply(
        [&s](NodeId origin, SeqNum seq, const std::string&) {
          s.report_stability("verified", origin, seq);
        });
  }

  nc1.wait_put(put.value(), "all_regions", [&](SeqNum) {
    std::printf("  t=%6.1f ms  geo-replicated to all remote regions\n",
                to_ms(sim.now()));
  });
  stabs[0]->waitfor(put.value().last_seq, "verified_majority", [&](SeqNum) {
    std::printf("  t=%6.1f ms  verified by 4 remote mirrors\n",
                to_ms(sim.now()));
  });
  sim.run();

  auto now_stable = nc1.get_stable("1/user:42", "all_regions");
  std::printf("  get_stable after replication: %s\n\n",
              now_stable ? to_string(now_stable->value).c_str() : "missing?");

  // Any mirror can read the data (read-only), including by time.
  auto at_oregon = kvs[6]->get("1/user:42");  // node "7" = Oregon
  std::printf("read at Oregon mirror: %s (version %llu)\n",
              at_oregon ? to_string(at_oregon->value).c_str() : "missing",
              at_oregon ? static_cast<unsigned long long>(at_oregon->version)
                        : 0ULL);

  // Primary-site rule: Oregon cannot write North California's pool.
  auto rejected = kvs[6]->put("1/user:42", to_bytes("hacked"));
  std::printf("Oregon writing NC's key: %s\n", rejected.message().c_str());
  return 0;
}
