// Gifford's quorum protocol from Stabilizer predicates (paper §IV-B),
// reproducing the Fig 3 setup: quorum servers at Utah1 / Wisconsin /
// Clemson, writer at Utah2, reader at Utah1, Nr = Nw = 2.
//
// Build & run:  ./build/examples/quorum_register
#include <cstdio>

#include "net/sim_transport.hpp"
#include "quorum/quorum_kv.hpp"

using namespace stab;
using namespace stab::quorum;

int main() {
  Topology topo = cloudlab_topology();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);

  QuorumOptions q;
  q.servers = {cloudlab::kUtah1, cloudlab::kWisconsin, cloudlab::kClemson};
  q.read_quorum = 2;
  q.write_quorum = 2;

  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<QuorumNode>> nodes;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    stabs.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    nodes.push_back(std::make_unique<QuorumNode>(*stabs.back(), q));
  }
  QuorumNode& writer = *nodes[cloudlab::kUtah2];
  QuorumNode& reader = *nodes[cloudlab::kUtah1];

  std::printf("quorum_register: N=3 servers, Nr=Nw=2 (Nr+Nw>N)\n");
  std::printf("write predicate: %s\n\n", writer.write_predicate().c_str());

  TimePoint t0 = sim.now();
  writer.write("account:7", to_bytes("balance=100"), [&](uint64_t version) {
    std::printf("  t=%6.1f ms  write committed at %zu servers (version %llu)\n",
                to_ms(sim.now() - t0), q.write_quorum,
                static_cast<unsigned long long>(version));
    // Quorum read: completes on the 2nd response — the reader itself plus
    // the faster of Wisconsin/Clemson, i.e. ~RTT(Wisconsin) = 35.6 ms.
    TimePoint r0 = sim.now();
    reader.read("account:7", [&, r0](ReadResult result) {
      std::printf("  t=%6.1f ms  quorum read -> '%s' after %.2f ms "
                  "(%zu responses)\n",
                  to_ms(sim.now() - t0),
                  to_string(result.value).c_str(),
                  to_ms(sim.now() - r0), result.responses);
      std::printf(
          "\nRead latency tracks the 2nd-fastest quorum member "
          "(Wisconsin,\nRTT 35.6 ms) — the Fig 3 result.\n");
    });
  });
  sim.run();

  // Overwrite and read again: the reader always sees the latest committed
  // write (quorum intersection).
  writer.write("account:7", to_bytes("balance=250"), [&](uint64_t) {
    reader.read("account:7", [&](ReadResult result) {
      std::printf("after second write, read sees: '%s'\n",
                  to_string(result.value).c_str());
    });
  });
  sim.run();
  return 0;
}
