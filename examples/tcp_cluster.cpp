// Real-socket deployment: a three-node Stabilizer cluster over TCP on
// loopback (one process, three transports — the same code works across
// machines by changing the address list), using the blocking waitfor API.
//
// Build & run:  ./build/examples/tcp_cluster [base_port]
#include <cstdio>
#include <cstdlib>

#include "core/stabilizer.hpp"
#include "net/tcp_transport.hpp"

using namespace stab;

int main(int argc, char** argv) {
  uint16_t base_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 39310;

  Topology topo;
  topo.add_node("alpha", "east");
  topo.add_node("beta", "east");
  topo.add_node("gamma", "west");
  LinkSpec l;  // latency comes from the real network (loopback here)
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b)
      if (a != b) topo.set_link(a, b, l);

  auto addrs = loopback_addrs(3, base_port);
  std::printf("tcp_cluster: three nodes on 127.0.0.1:%u..%u\n\n", base_port,
              base_port + 2);

  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n)
    transports.push_back(std::make_unique<TcpTransport>(n, addrs));
  for (NodeId n = 0; n < 3; ++n) {
    if (!transports[n]->wait_connected(seconds(10))) {
      std::printf("node %u failed to connect\n", n);
      return 1;
    }
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.ack_interval = millis(1);
    nodes.push_back(std::make_unique<Stabilizer>(opts, *transports[n]));
  }
  std::printf("all nodes connected over TCP\n");

  nodes[1]->set_delivery_handler(
      [](NodeId origin, SeqNum seq, BytesView payload, uint64_t) {
        std::printf("  beta received seq %lld from node %u: %s\n",
                    static_cast<long long>(seq), origin,
                    to_string(payload).c_str());
      });
  nodes[2]->set_delivery_handler(
      [](NodeId origin, SeqNum seq, BytesView payload, uint64_t) {
        std::printf("  gamma received seq %lld from node %u: %s\n",
                    static_cast<long long>(seq), origin,
                    to_string(payload).c_str());
      });

  nodes[0]->register_predicate("everywhere", "MIN($ALLWNODES-$MYWNODE)");

  for (int i = 0; i < 3; ++i) {
    SeqNum seq =
        nodes[0]->send(to_bytes("tcp message #" + std::to_string(i)));
    bool ok = nodes[0]->waitfor_blocking(seq, "everywhere", seconds(10));
    std::printf("alpha: seq %lld %s\n", static_cast<long long>(seq),
                ok ? "stable on every node" : "TIMED OUT");
    if (!ok) return 1;
  }

  std::printf("\nmessages sent: %llu, ack batches: %llu\n",
              static_cast<unsigned long long>(nodes[0]->stats().messages_sent),
              static_cast<unsigned long long>(
                  nodes[0]->stats().ack_batches_sent));
  nodes.clear();
  for (auto& t : transports) t->shutdown();
  return 0;
}
