// Quickstart: a three-node geo-replicated cluster with user-defined
// consistency, on the deterministic simulator.
//
// What it shows:
//   1. Describe a topology (three data centers, WAN latencies).
//   2. Start one Stabilizer per node.
//   3. Define consistency models as stability-frontier predicates in the
//      DSL — from "any remote copy" to "every remote copy".
//   4. Send data and watch each frontier advance at a different time: the
//      consistency model decides how long the client waits, not the system.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/stabilizer.hpp"
#include "net/sim_transport.hpp"

using namespace stab;

int main() {
  // --- 1. Topology: three data centers with asymmetric WAN latencies -------
  Topology topo;
  topo.add_node("frankfurt", "eu");
  topo.add_node("dublin", "eu");
  topo.add_node("oregon", "us");
  LinkSpec fast, slow;
  fast.latency = from_ms(12);   // Frankfurt <-> Dublin
  slow.latency = from_ms(75);   // Europe <-> Oregon
  topo.set_link_bidir(0, 1, fast);
  topo.set_link_bidir(0, 2, slow);
  topo.set_link_bidir(1, 2, slow);

  // --- 2. One Stabilizer per WAN node on a shared simulator ----------------
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  Stabilizer& frankfurt = *nodes[0];

  // --- 3. Consistency models as DSL predicates ------------------------------
  // "one copy anywhere", "a copy in my AZ plus one remote region",
  // "a majority of all nodes", "every remote node".
  frankfurt.register_predicate("any_copy", "MAX($ALLWNODES-$MYWNODE)");
  frankfurt.register_predicate(
      "az_plus_remote",
      "MIN(MIN($MYAZWNODES-$MYWNODE),MAX($ALLWNODES-$MYAZWNODES))");
  frankfurt.register_predicate(
      "majority", "KTH_MAX(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)");
  frankfurt.register_predicate("all_remote", "MIN($ALLWNODES-$MYWNODE)");

  // --- 4. Send one message; watch each frontier reach it --------------------
  std::printf("quickstart: frankfurt sends one message to its mirrors\n\n");
  SeqNum seq = frankfurt.send(to_bytes("hello, planet"));
  for (const char* key :
       {"any_copy", "az_plus_remote", "majority", "all_remote"}) {
    frankfurt.waitfor(seq, key, [&, key](SeqNum frontier) {
      std::printf("  t=%6.1f ms  predicate %-15s satisfied (frontier=%lld)\n",
                  to_ms(sim.now()), key,
                  static_cast<long long>(frontier));
    });
  }
  sim.run();

  std::printf(
      "\nDublin (12 ms away) satisfies the weak predicates early; Oregon\n"
      "(75 ms away) gates the strong ones. Same data plane, four different\n"
      "user-defined consistency models.\n");

  // Receivers see the data too:
  for (NodeId n = 1; n < 3; ++n)
    std::printf("node %u delivered through seq %lld\n", n,
                static_cast<long long>(nodes[n]->delivered_through(0)));
  return 0;
}
