// Dropbox-like file backup (paper §V-A): upload files with per-file
// consistency chosen from the six Table III predicates, over the emulated
// EC2 WAN.
//
// Usage:  ./build/examples/file_backup [predicate]
//   predicate in {OneWNode, OneRegion, MajorityWNodes, MajorityRegions,
//                 AllWNodes, AllRegions}; default MajorityRegions.
#include <cstdio>
#include <cstring>

#include "backup/backup_service.hpp"
#include "common/stats.hpp"
#include "backup/trace.hpp"
#include "net/sim_transport.hpp"

using namespace stab;

int main(int argc, char** argv) {
  std::string chosen = argc > 1 ? argv[1] : "MajorityRegions";

  Topology topo = ec2_topology();
  sim::Simulator sim;
  SimCluster cluster(topo, sim);

  auto owner = [&topo](const std::string& key) {
    auto id = topo.find_node(key.substr(0, key.find('/')));
    return id ? *id : kInvalidNode;
  };
  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<store::LocalStore>> stores;
  std::vector<std::unique_ptr<kv::WanKV>> kvs;
  std::vector<std::unique_ptr<backup::BackupService>> services;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.broadcast_acks = false;  // sender-side stability only
    stabs.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    stores.push_back(std::make_unique<store::LocalStore>());
    kvs.push_back(
        std::make_unique<kv::WanKV>(*stabs.back(), *stores.back(), owner));
    services.push_back(std::make_unique<backup::BackupService>(
        *kvs.back(), topo.node(n).name));
  }
  backup::BackupService& svc = *services[0];
  if (Status st = svc.register_standard_predicates(); !st.is_ok()) {
    std::printf("predicate registration failed: %s\n", st.message().c_str());
    return 1;
  }
  if (!svc.kv().stabilizer().has_predicate(chosen)) {
    std::printf("unknown predicate '%s'\n", chosen.c_str());
    return 1;
  }

  std::printf("file_backup: uploading with consistency '%s'\n", chosen.c_str());
  auto preds = backup::BackupService::standard_predicates(topo, 0);
  std::printf("  DSL: %s\n\n", preds[chosen].c_str());

  // A mini synthetic sync burst: 20 files, heavy-tailed sizes.
  backup::TraceParams params;
  params.total_bytes = 64ULL << 20;  // 64 MB
  params.duration = seconds(10);
  params.num_huge_files = 1;
  params.huge_file_bytes = 24ULL << 20;
  auto trace = backup::generate_dropbox_trace(params);
  std::printf("  %zu files, %.1f MB total, largest %.1f MB\n\n", trace.size(),
              64.0, backup::summarize(trace).max_bytes / 1e6);

  Series latency;
  size_t done = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto& rec = trace[i];
    sim.schedule_at(rec.at, [&, i] {
      auto result = svc.backup_file("f" + std::to_string(i), {},
                                    trace[i].size_bytes);
      if (!result.is_ok()) return;
      TimePoint start = sim.now();
      svc.wait_stable(result.value(), chosen, [&, start, i](SeqNum) {
        double ms = to_ms(sim.now() - start);
        latency.add(ms);
        if (trace[i].size_bytes > 4 << 20)
          std::printf("  t=%7.2f s  file %zu (%5.1f MB) stable after %8.1f ms\n",
                      to_sec(sim.now()), i, trace[i].size_bytes / 1e6, ms);
        ++done;
      });
    });
  }
  sim.run();

  std::printf("\n%zu/%zu files reached '%s' stability\n", done, trace.size(),
              chosen.c_str());
  std::printf("upload-to-stable latency: mean %.1f ms, median %.1f ms, "
              "p99 %.1f ms, max %.1f ms\n",
              latency.mean(), latency.median(), latency.percentile(99),
              latency.max());
  std::printf("\nTry: ./file_backup AllWNodes   (stronger, slower)\n"
              "     ./file_backup OneWNode     (weakest, fastest)\n");
  return 0;
}
