// Live-scrape demo: a three-node TCP cluster with a stability-latency
// probe and a MetricsEndpoint, generating traffic while answering
// Prometheus scrapes — the target of ci.sh's exporter smoke and of
// docs/OBSERVABILITY.md §7's curl example.
//
//   ./build/examples/metrics_export [base_port] [run_seconds]
//
// Prints "METRICS_PORT=<port>" (the kernel-assigned scrape port) on stdout
// as soon as the endpoint is up, then sends on node alpha for run_seconds
// while beta/gamma mirror. Scrape it mid-run:
//
//   curl -s http://127.0.0.1:$PORT/metrics
//   ./build/tools/stab_metrics_scrape --retries 50 $PORT
//
// Exits 0 after a final everywhere-stability check.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/stabilizer.hpp"
#include "data/wire.hpp"
#include "net/metrics_endpoint.hpp"
#include "net/tcp_transport.hpp"

using namespace stab;

int main(int argc, char** argv) {
  uint16_t base_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 39410;
  int run_seconds = argc > 2 ? std::atoi(argv[2]) : 5;

  Topology topo;
  topo.add_node("alpha", "east");
  topo.add_node("beta", "east");
  topo.add_node("gamma", "west");
  LinkSpec l;
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b)
      if (a != b) topo.set_link(a, b, l);

  auto addrs = loopback_addrs(3, base_port);
  std::vector<std::unique_ptr<TcpTransport>> transports;
  for (NodeId n = 0; n < 3; ++n)
    transports.push_back(std::make_unique<TcpTransport>(n, addrs));

  // One probe for the whole (single-process) cluster: every node's
  // RealtimeEnv reads the same steady clock, so alpha's send stamps join
  // beta's and gamma's deliver stamps into real replication latencies.
  auto probe = std::make_shared<obs::LatencyProbe>();

  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    if (!transports[n]->wait_connected(seconds(10))) {
      std::fprintf(stderr, "metrics_export: node %u failed to connect\n", n);
      return 1;
    }
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.ack_interval = millis(1);
    opts.probe = probe;
    nodes.push_back(std::make_unique<Stabilizer>(opts, *transports[n]));
  }
  nodes[0]->register_predicate("everywhere", "MIN($ALLWNODES-$MYWNODE)");

  MetricsEndpoint endpoint;
  for (NodeId n = 0; n < 3; ++n)
    endpoint.add_registry("node" + std::to_string(n) + ".",
                          &nodes[n]->metrics());
  endpoint.add_registry("", &obs::global());  // wire.* codec volume
  endpoint.add_probe("", probe.get(),
                     [&] { return transports[0]->env().now(); });
  endpoint.set_pre_scrape([] { data::flush_wire_counters(); });
  Status st = endpoint.start();
  if (!st.is_ok()) {
    std::fprintf(stderr, "metrics_export: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("METRICS_PORT=%u\n", endpoint.port());
  std::fflush(stdout);

  // Traffic: steady small sends so a mid-run scrape sees live counters and
  // the probe's windowed percentiles cover recent epochs.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(run_seconds);
  SeqNum last = kNoSeq;
  uint64_t sent = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    last = nodes[0]->send(to_bytes("metrics demo #" + std::to_string(sent)));
    ++sent;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  bool stable = nodes[0]->waitfor_blocking(last, "everywhere", seconds(10));
  std::printf("sent=%llu final_seq=%lld everywhere_stable=%d\n",
              static_cast<unsigned long long>(sent),
              static_cast<long long>(last), stable ? 1 : 0);

  endpoint.stop();
  nodes.clear();
  for (auto& t : transports) t->shutdown();
  return stable ? 0 : 1;
}
