# Empty dependencies file for pulsar_test.
# This may be replaced when dependencies are built.
