file(REMOVE_RECURSE
  "CMakeFiles/pulsar_test.dir/pulsar_test.cpp.o"
  "CMakeFiles/pulsar_test.dir/pulsar_test.cpp.o.d"
  "pulsar_test"
  "pulsar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulsar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
