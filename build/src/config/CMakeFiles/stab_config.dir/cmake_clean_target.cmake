file(REMOVE_RECURSE
  "libstab_config.a"
)
