file(REMOVE_RECURSE
  "CMakeFiles/stab_config.dir/topology.cpp.o"
  "CMakeFiles/stab_config.dir/topology.cpp.o.d"
  "libstab_config.a"
  "libstab_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
