# Empty compiler generated dependencies file for stab_config.
# This may be replaced when dependencies are built.
