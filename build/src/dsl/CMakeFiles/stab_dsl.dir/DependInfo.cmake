
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/analyzer.cpp" "src/dsl/CMakeFiles/stab_dsl.dir/analyzer.cpp.o" "gcc" "src/dsl/CMakeFiles/stab_dsl.dir/analyzer.cpp.o.d"
  "/root/repo/src/dsl/lexer.cpp" "src/dsl/CMakeFiles/stab_dsl.dir/lexer.cpp.o" "gcc" "src/dsl/CMakeFiles/stab_dsl.dir/lexer.cpp.o.d"
  "/root/repo/src/dsl/parser.cpp" "src/dsl/CMakeFiles/stab_dsl.dir/parser.cpp.o" "gcc" "src/dsl/CMakeFiles/stab_dsl.dir/parser.cpp.o.d"
  "/root/repo/src/dsl/predicate.cpp" "src/dsl/CMakeFiles/stab_dsl.dir/predicate.cpp.o" "gcc" "src/dsl/CMakeFiles/stab_dsl.dir/predicate.cpp.o.d"
  "/root/repo/src/dsl/program.cpp" "src/dsl/CMakeFiles/stab_dsl.dir/program.cpp.o" "gcc" "src/dsl/CMakeFiles/stab_dsl.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/stab_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
