# Empty compiler generated dependencies file for stab_dsl.
# This may be replaced when dependencies are built.
