file(REMOVE_RECURSE
  "libstab_dsl.a"
)
