file(REMOVE_RECURSE
  "CMakeFiles/stab_dsl.dir/analyzer.cpp.o"
  "CMakeFiles/stab_dsl.dir/analyzer.cpp.o.d"
  "CMakeFiles/stab_dsl.dir/lexer.cpp.o"
  "CMakeFiles/stab_dsl.dir/lexer.cpp.o.d"
  "CMakeFiles/stab_dsl.dir/parser.cpp.o"
  "CMakeFiles/stab_dsl.dir/parser.cpp.o.d"
  "CMakeFiles/stab_dsl.dir/predicate.cpp.o"
  "CMakeFiles/stab_dsl.dir/predicate.cpp.o.d"
  "CMakeFiles/stab_dsl.dir/program.cpp.o"
  "CMakeFiles/stab_dsl.dir/program.cpp.o.d"
  "libstab_dsl.a"
  "libstab_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
