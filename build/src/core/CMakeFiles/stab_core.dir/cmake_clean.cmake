file(REMOVE_RECURSE
  "CMakeFiles/stab_core.dir/stabilizer.cpp.o"
  "CMakeFiles/stab_core.dir/stabilizer.cpp.o.d"
  "libstab_core.a"
  "libstab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
