# Empty compiler generated dependencies file for stab_core.
# This may be replaced when dependencies are built.
