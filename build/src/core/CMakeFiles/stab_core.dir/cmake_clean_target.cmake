file(REMOVE_RECURSE
  "libstab_core.a"
)
