file(REMOVE_RECURSE
  "libstab_net.a"
)
