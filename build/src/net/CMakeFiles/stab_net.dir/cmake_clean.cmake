file(REMOVE_RECURSE
  "CMakeFiles/stab_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/stab_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/stab_net.dir/sim_transport.cpp.o"
  "CMakeFiles/stab_net.dir/sim_transport.cpp.o.d"
  "CMakeFiles/stab_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/stab_net.dir/tcp_transport.cpp.o.d"
  "libstab_net.a"
  "libstab_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
