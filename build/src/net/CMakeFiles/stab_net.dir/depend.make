# Empty dependencies file for stab_net.
# This may be replaced when dependencies are built.
