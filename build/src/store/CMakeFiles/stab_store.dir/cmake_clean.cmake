file(REMOVE_RECURSE
  "CMakeFiles/stab_store.dir/local_store.cpp.o"
  "CMakeFiles/stab_store.dir/local_store.cpp.o.d"
  "libstab_store.a"
  "libstab_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
