file(REMOVE_RECURSE
  "libstab_store.a"
)
