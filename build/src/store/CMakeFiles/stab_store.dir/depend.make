# Empty dependencies file for stab_store.
# This may be replaced when dependencies are built.
