file(REMOVE_RECURSE
  "CMakeFiles/stab_pubsub.dir/broker.cpp.o"
  "CMakeFiles/stab_pubsub.dir/broker.cpp.o.d"
  "libstab_pubsub.a"
  "libstab_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
