# Empty dependencies file for stab_pubsub.
# This may be replaced when dependencies are built.
