file(REMOVE_RECURSE
  "libstab_pubsub.a"
)
