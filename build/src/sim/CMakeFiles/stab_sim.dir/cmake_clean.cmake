file(REMOVE_RECURSE
  "CMakeFiles/stab_sim.dir/network.cpp.o"
  "CMakeFiles/stab_sim.dir/network.cpp.o.d"
  "CMakeFiles/stab_sim.dir/simulator.cpp.o"
  "CMakeFiles/stab_sim.dir/simulator.cpp.o.d"
  "libstab_sim.a"
  "libstab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
