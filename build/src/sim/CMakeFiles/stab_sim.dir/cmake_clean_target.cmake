file(REMOVE_RECURSE
  "libstab_sim.a"
)
