# Empty compiler generated dependencies file for stab_sim.
# This may be replaced when dependencies are built.
