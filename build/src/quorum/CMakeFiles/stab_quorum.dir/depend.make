# Empty dependencies file for stab_quorum.
# This may be replaced when dependencies are built.
