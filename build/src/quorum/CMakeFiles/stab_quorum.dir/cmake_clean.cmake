file(REMOVE_RECURSE
  "CMakeFiles/stab_quorum.dir/quorum_kv.cpp.o"
  "CMakeFiles/stab_quorum.dir/quorum_kv.cpp.o.d"
  "libstab_quorum.a"
  "libstab_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
