file(REMOVE_RECURSE
  "libstab_quorum.a"
)
