file(REMOVE_RECURSE
  "CMakeFiles/stab_data.dir/out_buffer.cpp.o"
  "CMakeFiles/stab_data.dir/out_buffer.cpp.o.d"
  "CMakeFiles/stab_data.dir/wire.cpp.o"
  "CMakeFiles/stab_data.dir/wire.cpp.o.d"
  "libstab_data.a"
  "libstab_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
