file(REMOVE_RECURSE
  "libstab_data.a"
)
