# Empty compiler generated dependencies file for stab_data.
# This may be replaced when dependencies are built.
