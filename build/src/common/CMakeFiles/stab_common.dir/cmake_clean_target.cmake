file(REMOVE_RECURSE
  "libstab_common.a"
)
