# Empty dependencies file for stab_common.
# This may be replaced when dependencies are built.
