file(REMOVE_RECURSE
  "CMakeFiles/stab_common.dir/logging.cpp.o"
  "CMakeFiles/stab_common.dir/logging.cpp.o.d"
  "CMakeFiles/stab_common.dir/realtime_env.cpp.o"
  "CMakeFiles/stab_common.dir/realtime_env.cpp.o.d"
  "libstab_common.a"
  "libstab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
