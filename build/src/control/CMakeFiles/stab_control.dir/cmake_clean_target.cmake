file(REMOVE_RECURSE
  "libstab_control.a"
)
