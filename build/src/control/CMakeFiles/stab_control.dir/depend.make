# Empty dependencies file for stab_control.
# This may be replaced when dependencies are built.
