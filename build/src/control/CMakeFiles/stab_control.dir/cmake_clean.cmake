file(REMOVE_RECURSE
  "CMakeFiles/stab_control.dir/frontier_engine.cpp.o"
  "CMakeFiles/stab_control.dir/frontier_engine.cpp.o.d"
  "libstab_control.a"
  "libstab_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
