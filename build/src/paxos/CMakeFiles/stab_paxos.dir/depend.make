# Empty dependencies file for stab_paxos.
# This may be replaced when dependencies are built.
