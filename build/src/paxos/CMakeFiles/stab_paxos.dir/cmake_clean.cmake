file(REMOVE_RECURSE
  "CMakeFiles/stab_paxos.dir/paxos.cpp.o"
  "CMakeFiles/stab_paxos.dir/paxos.cpp.o.d"
  "libstab_paxos.a"
  "libstab_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
