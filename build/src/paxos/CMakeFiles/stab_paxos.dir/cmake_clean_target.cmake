file(REMOVE_RECURSE
  "libstab_paxos.a"
)
