file(REMOVE_RECURSE
  "CMakeFiles/stab_kv.dir/wan_kv.cpp.o"
  "CMakeFiles/stab_kv.dir/wan_kv.cpp.o.d"
  "libstab_kv.a"
  "libstab_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
