file(REMOVE_RECURSE
  "libstab_kv.a"
)
