# Empty dependencies file for stab_kv.
# This may be replaced when dependencies are built.
