file(REMOVE_RECURSE
  "libstab_backup.a"
)
