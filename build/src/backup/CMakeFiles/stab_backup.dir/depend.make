# Empty dependencies file for stab_backup.
# This may be replaced when dependencies are built.
