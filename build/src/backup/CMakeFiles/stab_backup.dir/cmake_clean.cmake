file(REMOVE_RECURSE
  "CMakeFiles/stab_backup.dir/backup_service.cpp.o"
  "CMakeFiles/stab_backup.dir/backup_service.cpp.o.d"
  "CMakeFiles/stab_backup.dir/trace.cpp.o"
  "CMakeFiles/stab_backup.dir/trace.cpp.o.d"
  "libstab_backup.a"
  "libstab_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
