# Empty dependencies file for stab_pulsar.
# This may be replaced when dependencies are built.
