file(REMOVE_RECURSE
  "libstab_pulsar.a"
)
