file(REMOVE_RECURSE
  "CMakeFiles/stab_pulsar.dir/pulsar_lite.cpp.o"
  "CMakeFiles/stab_pulsar.dir/pulsar_lite.cpp.o.d"
  "libstab_pulsar.a"
  "libstab_pulsar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_pulsar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
