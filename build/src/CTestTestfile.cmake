# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("config")
subdirs("net")
subdirs("dsl")
subdirs("control")
subdirs("data")
subdirs("core")
subdirs("store")
subdirs("kv")
subdirs("backup")
subdirs("pubsub")
subdirs("paxos")
subdirs("pulsar")
subdirs("quorum")
