
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pubsub_reconfig.cpp" "examples/CMakeFiles/pubsub_reconfig.dir/pubsub_reconfig.cpp.o" "gcc" "examples/CMakeFiles/pubsub_reconfig.dir/pubsub_reconfig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pubsub/CMakeFiles/stab_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/stab_control.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/stab_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stab_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/stab_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/stab_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
