# Empty dependencies file for pubsub_reconfig.
# This may be replaced when dependencies are built.
