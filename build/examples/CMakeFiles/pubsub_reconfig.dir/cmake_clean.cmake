file(REMOVE_RECURSE
  "CMakeFiles/pubsub_reconfig.dir/pubsub_reconfig.cpp.o"
  "CMakeFiles/pubsub_reconfig.dir/pubsub_reconfig.cpp.o.d"
  "pubsub_reconfig"
  "pubsub_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
