# Empty compiler generated dependencies file for pubsub_reconfig.
# This may be replaced when dependencies are built.
