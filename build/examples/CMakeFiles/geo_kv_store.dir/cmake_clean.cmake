file(REMOVE_RECURSE
  "CMakeFiles/geo_kv_store.dir/geo_kv_store.cpp.o"
  "CMakeFiles/geo_kv_store.dir/geo_kv_store.cpp.o.d"
  "geo_kv_store"
  "geo_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
