# Empty dependencies file for geo_kv_store.
# This may be replaced when dependencies are built.
