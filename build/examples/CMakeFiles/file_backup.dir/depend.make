# Empty dependencies file for file_backup.
# This may be replaced when dependencies are built.
