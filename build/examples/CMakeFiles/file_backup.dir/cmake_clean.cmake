file(REMOVE_RECURSE
  "CMakeFiles/file_backup.dir/file_backup.cpp.o"
  "CMakeFiles/file_backup.dir/file_backup.cpp.o.d"
  "file_backup"
  "file_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
