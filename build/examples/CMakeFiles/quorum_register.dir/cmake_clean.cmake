file(REMOVE_RECURSE
  "CMakeFiles/quorum_register.dir/quorum_register.cpp.o"
  "CMakeFiles/quorum_register.dir/quorum_register.cpp.o.d"
  "quorum_register"
  "quorum_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
