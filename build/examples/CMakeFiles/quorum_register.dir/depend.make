# Empty dependencies file for quorum_register.
# This may be replaced when dependencies are built.
