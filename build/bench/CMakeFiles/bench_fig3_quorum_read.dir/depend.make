# Empty dependencies file for bench_fig3_quorum_read.
# This may be replaced when dependencies are built.
