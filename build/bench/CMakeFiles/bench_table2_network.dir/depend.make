# Empty dependencies file for bench_table2_network.
# This may be replaced when dependencies are built.
