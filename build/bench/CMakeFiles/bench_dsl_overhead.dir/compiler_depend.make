# Empty compiler generated dependencies file for bench_dsl_overhead.
# This may be replaced when dependencies are built.
