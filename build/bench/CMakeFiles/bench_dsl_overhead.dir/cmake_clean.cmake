file(REMOVE_RECURSE
  "CMakeFiles/bench_dsl_overhead.dir/bench_dsl_overhead.cpp.o"
  "CMakeFiles/bench_dsl_overhead.dir/bench_dsl_overhead.cpp.o.d"
  "bench_dsl_overhead"
  "bench_dsl_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsl_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
