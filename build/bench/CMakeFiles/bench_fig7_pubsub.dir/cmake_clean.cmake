file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pubsub.dir/bench_fig7_pubsub.cpp.o"
  "CMakeFiles/bench_fig7_pubsub.dir/bench_fig7_pubsub.cpp.o.d"
  "bench_fig7_pubsub"
  "bench_fig7_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
