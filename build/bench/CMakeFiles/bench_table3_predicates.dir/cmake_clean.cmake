file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_predicates.dir/bench_table3_predicates.cpp.o"
  "CMakeFiles/bench_table3_predicates.dir/bench_table3_predicates.cpp.o.d"
  "bench_table3_predicates"
  "bench_table3_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
