# Empty dependencies file for bench_fig6_file_sync.
# This may be replaced when dependencies are built.
