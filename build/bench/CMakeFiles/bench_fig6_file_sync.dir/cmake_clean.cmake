file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_file_sync.dir/bench_fig6_file_sync.cpp.o"
  "CMakeFiles/bench_fig6_file_sync.dir/bench_fig6_file_sync.cpp.o.d"
  "bench_fig6_file_sync"
  "bench_fig6_file_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_file_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
